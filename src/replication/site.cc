#include "replication/site.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace miniraid {
namespace {

/// Timeout for the (attempt+1)-th wait: base stretched by backoff^attempt.
Duration RetryDelay(Duration base, uint32_t attempt, double backoff) {
  double delay = static_cast<double>(base);
  for (uint32_t i = 0; i < attempt; ++i) delay *= backoff;
  return static_cast<Duration>(delay);
}

Database MakeDatabase(SiteId id, const SiteOptions& options) {
  if (options.placement.empty()) return Database(options.db_size);
  MR_CHECK(options.placement.size() == options.n_sites)
      << "placement must cover every site";
  return Database(options.db_size, options.placement[id]);
}

HoldersTable MakeHolders(const SiteOptions& options) {
  if (options.placement.empty()) {
    return HoldersTable(options.db_size, options.n_sites);
  }
  return HoldersTable::FromPlacement(options.db_size, options.n_sites,
                                     options.placement);
}

}  // namespace

Site::Site(SiteId id, const SiteOptions& options, Transport* transport,
           SiteRuntime* runtime)
    : id_(id),
      options_(options),
      transport_(transport),
      runtime_(runtime),
      db_(MakeDatabase(id, options)),
      lock_manager_(options.concurrency),
      session_vector_(options.n_sites),
      fail_locks_(options.db_size, options.n_sites),
      holders_(MakeHolders(options)) {
  MR_CHECK(id < options.n_sites) << "site id out of range";
}

void Site::SendTo(SiteId to, Payload payload) {
  const Status status = transport_->Send(MakeMessage(id_, to, payload));
  if (!status.ok()) {
    MR_LOG(kWarn) << "site " << id_ << ": send to " << to
                  << " failed: " << status.ToString();
  }
}

std::vector<SiteId> Site::OperationalPeers() const {
  std::vector<SiteId> peers = session_vector_.OperationalSites();
  peers.erase(std::remove(peers.begin(), peers.end(), id_), peers.end());
  return peers;
}

SiteId Site::PickCopySource(ItemId item) const {
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    if (!session_vector_.IsUp(t)) continue;
    if (!holders_.Holds(item, t)) continue;
    if (fail_locks_.IsSet(item, t)) continue;
    return t;
  }
  return kInvalidSite;
}

void Site::OnMessage(const Message& msg) {
  // A down site "remain[s] inactive until recovery was initiated from the
  // managing site" — the only message it reacts to is kRecoverSite.
  if (status_ == SiteStatus::kDown && msg.type != MsgType::kRecoverSite) {
    return;
  }
  if (status_ == SiteStatus::kTerminating) return;

  switch (msg.type) {
    case MsgType::kTxnRequest:
      HandleTxnRequest(msg);
      break;
    case MsgType::kTxnReply:
      // Sites never receive transaction replies; the managing site does.
      break;
    case MsgType::kPrepare:
      HandlePrepare(msg);
      break;
    case MsgType::kPrepareAck:
      HandlePrepareAck(msg);
      break;
    case MsgType::kCommit:
      HandleCommit(msg);
      break;
    case MsgType::kCommitAck:
      HandleCommitAck(msg);
      break;
    case MsgType::kAbort:
      HandleAbort(msg);
      break;
    case MsgType::kCopyRequest:
      HandleCopyRequest(msg);
      break;
    case MsgType::kCopyReply:
      HandleCopyReply(msg);
      break;
    case MsgType::kClearFailLocks:
      HandleClearFailLocks(msg);
      break;
    case MsgType::kClearFailLocksAck:
      break;  // the special transaction is fire-and-forget
    case MsgType::kRecoveryAnnounce:
      HandleRecoveryAnnounce(msg);
      break;
    case MsgType::kRecoveryInfo:
      HandleRecoveryInfo(msg);
      break;
    case MsgType::kFailureAnnounce:
      HandleFailureAnnounce(msg);
      break;
    case MsgType::kFailureAck:
      break;  // type 2 is fire-and-forget
    case MsgType::kCopyCreate:
      HandleCopyCreate(msg);
      break;
    case MsgType::kCopyCreateAck:
      break;  // type 3 is fire-and-forget
    case MsgType::kFailSite:
      Crash();
      break;
    case MsgType::kRecoverSite:
      StartRecovery();
      break;
    case MsgType::kShutdown:
      status_ = SiteStatus::kTerminating;
      break;
    case MsgType::kDecisionQuery:
      HandleDecisionQuery(msg);
      break;
    case MsgType::kBatchPrepare:
      HandleBatchPrepare(msg);
      break;
    case MsgType::kBatchPrepareAck:
      HandleBatchPrepareAck(msg);
      break;
    case MsgType::kBatchCommit:
      HandleBatchCommit(msg);
      break;
    case MsgType::kBatchCommitAck:
      HandleBatchCommitAck(msg);
      break;
    case MsgType::kChannelAck:
      // Consumed by the ReliableChannel below this handler; one reaching
      // the site (channel disabled) carries nothing to act on.
      break;
  }
}

void Site::Crash() {
  status_ = SiteStatus::kDown;
  Trace(TraceEvent::kCrashed, options_.lose_state_on_crash ? 1 : 0);
  for (auto& [txn, coordination] : coords_) {
    runtime_->CancelTimer(coordination.timer);
    runtime_->CancelTimer(coordination.lock_timer);
  }
  coords_.clear();
  if (batch_) {
    runtime_->CancelTimer(batch_->timer);
    batch_.reset();
  }
  for (auto& [key, forming] : forming_batches_) {
    runtime_->CancelTimer(forming.timer);
  }
  forming_batches_.clear();
  for (auto& [batch_id, active] : active_batches_) {
    runtime_->CancelTimer(active.timer);
  }
  active_batches_.clear();
  batch_participations_.clear();
  for (auto& [txn, participation] : participations_) {
    runtime_->CancelTimer(participation.timer);
    runtime_->CancelTimer(participation.lock_timer);
  }
  participations_.clear();
  queued_requests_.clear();
  lock_manager_ = LockManager(options_.concurrency);  // locks vanish with
                                                      // the crash
  if (recovery_) {
    runtime_->CancelTimer(recovery_->timer);
    recovery_.reset();
  }
  if (options_.lose_state_on_crash) {
    // Cold restart: volatile state is gone. The session counter is treated
    // as stable storage (see SiteOptions::lose_state_on_crash).
    db_ = MakeDatabase(id_, options_);
    fail_locks_ = FailLockTable(options_.db_size, options_.n_sites);
    recent_outcomes_.clear();
    recent_outcomes_fifo_.clear();
    state_lost_ = true;
    return;
  }
  // Otherwise database, session vector, and fail-locks are retained: the
  // paper simulates failure by making the site ignore all system actions.
}

// ---------------------------------------------------------------------------
// Coordinator role (Appendix A, "actions at the coordinating site").
// ---------------------------------------------------------------------------

void Site::HandleTxnRequest(const Message& msg) {
  if (status_ != SiteStatus::kUp) return;  // client will time out
  // A duplicated request (transport fault or client retransmission) for a
  // transaction this site is already serving, has queued, or recently
  // finished must not run the transaction twice.
  const TxnId incoming = msg.As<TxnRequestArgs>().txn.id;
  const bool serving = coords_.count(incoming) > 0;
  const bool queued = std::any_of(
      queued_requests_.begin(), queued_requests_.end(),
      [incoming](const Message& q) {
        return q.As<TxnRequestArgs>().txn.id == incoming;
      });
  if (serving || queued || RecentOutcome(incoming).has_value()) {
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  if (batch_ ||
      coords_.size() >= options_.concurrency.EffectiveExecutors()) {
    // Every executor slot is busy (or a batch refresh has the site to
    // itself); serve this one when a slot frees up.
    if (queued_requests_.size() < kMaxQueuedRequests) {
      queued_requests_.push_back(msg);
    } else {
      MR_LOG(kWarn) << "site " << id_
                    << ": request queue full; dropping transaction";
    }
    return;
  }
  ++counters_.txns_coordinated;
  Coordination& c = coords_[incoming];
  c.txn = msg.As<TxnRequestArgs>().txn;
  c.client = msg.from;
  c.start_time = runtime_->Now();
  counters_.max_concurrent_coordinations =
      std::max<uint64_t>(counters_.max_concurrent_coordinations,
                         coords_.size());
  Trace(TraceEvent::kTxnReceived, c.txn.id, c.txn.ops.size());
  Charge(options_.costs.txn_setup);

  // Validate before touching any table: item ids from the wire are
  // untrusted input. The declared access sets are wire input too, and the
  // engine locks exactly what is declared — an undeclared op would run
  // outside the locks, so a declaration that under-covers ops is invalid.
  for (const Operation& op : c.txn.ops) {
    if (op.item >= options_.db_size) {
      ReplyAndClear(c, TxnOutcome::kRejectedInvalid);
      return;
    }
  }
  const std::vector<ItemId> read_set = c.txn.ReadSet();
  const std::vector<ItemId> write_set = c.txn.WriteSet();
  for (ItemId item : read_set) {
    if (item >= options_.db_size) {
      ReplyAndClear(c, TxnOutcome::kRejectedInvalid);
      return;
    }
  }
  for (ItemId item : write_set) {
    if (item >= options_.db_size) {
      ReplyAndClear(c, TxnOutcome::kRejectedInvalid);
      return;
    }
  }
  for (const Operation& op : c.txn.ops) {
    const std::vector<ItemId>& declared =
        op.is_read() ? read_set : write_set;
    if (std::find(declared.begin(), declared.end(), op.item) ==
        declared.end()) {
      ReplyAndClear(c, TxnOutcome::kRejectedInvalid);
      return;
    }
  }

  // "if transaction contains read operation for a fail-locked copy then
  // run copier transaction". Reads of items this site holds no copy of
  // (partial replication) fetch a remote copy the same way.
  for (ItemId item : read_set) {
    if (!db_.Holds(item) || fail_locks_.IsSet(item, id_)) {
      c.needs_copy.push_back(item);
    }
  }
  if (options_.concurrency.locking()) {
    AcquireCoordinatorLocks(c);
  } else {
    ProceedAfterLocks(c);
  }
}

void Site::AcquireCoordinatorLocks(Coordination& c) {
  // Shared locks for pure local reads, exclusive for writes and for stale
  // reads (the copier installs a fresh copy locally). Strict two-phase:
  // everything is released in ReplyAndClear.
  const TxnId txn = c.txn.id;
  std::map<ItemId, LockManager::Mode> wanted;
  for (ItemId item : c.txn.ReadSet()) {
    wanted[item] = LockManager::Mode::kShared;
  }
  for (ItemId item : c.needs_copy) {
    wanted[item] = LockManager::Mode::kExclusive;
  }
  for (ItemId item : c.txn.WriteSet()) {
    wanted[item] = LockManager::Mode::kExclusive;
  }
  for (const auto& [item, mode] : wanted) {
    const LockManager::Outcome outcome = lock_manager_.Acquire(
        item, txn, mode, [this, txn] { OnCoordinatorLockGranted(txn); });
    switch (outcome) {
      case LockManager::Outcome::kGranted:
        break;
      case LockManager::Outcome::kQueued:
        ++counters_.lock_waits;
        ++c.lock_waits_pending;
        break;
      case LockManager::Outcome::kRejected: {
        // Wait-die: this (younger) transaction dies; the client may retry.
        ++counters_.lock_rejections;
        ++counters_.txns_aborted_lock_conflict;
        lock_manager_.ReleaseAll(txn);
        ReplyAndClear(c, TxnOutcome::kAbortedLockConflict);
        return;
      }
    }
  }
  if (c.lock_waits_pending == 0) {
    ProceedAfterLocks(c);
  } else if (options_.concurrency.deadlock_policy == DeadlockPolicy::kTimeout) {
    c.lock_timer =
        runtime_->ScheduleAfter(options_.concurrency.lock_wait_timeout,
                                [this, txn] { CoordinatorLockTimeout(txn); });
  }
  // Wounds recorded by the acquisitions above (wound-wait policy) are
  // drained only now, with this coordination's bookkeeping consistent.
  ProcessWounds();
}

void Site::OnCoordinatorLockGranted(TxnId txn) {
  auto it = coords_.find(txn);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (--c.lock_waits_pending == 0) {
    if (c.lock_timer != kInvalidTimer) {
      runtime_->CancelTimer(c.lock_timer);
      c.lock_timer = kInvalidTimer;
    }
    ProceedAfterLocks(c);
  }
}

void Site::CoordinatorLockTimeout(TxnId txn) {
  auto it = coords_.find(txn);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  c.lock_timer = kInvalidTimer;
  if (c.lock_waits_pending == 0) return;  // raced with the last grant
  ++counters_.txns_aborted_lock_timeout;
  ReplyAndClear(c, TxnOutcome::kAbortedLockTimeout);  // releases the locks
}

void Site::ProceedAfterLocks(Coordination& c) {
  if (!c.needs_copy.empty()) {
    StartCopierPhase(c, c.needs_copy);
  } else {
    ExecuteAndPrepare(c);
  }
}

void Site::StartCopierPhase(Coordination& c,
                            const std::vector<ItemId>& needed) {
  c.phase = Coordination::Phase::kCopier;
  c.phase_start = runtime_->Now();
  c.retries_used = 0;
  if (!c.batch_refresh) {
    Trace(TraceEvent::kCopierStarted, c.txn.id, needed.size());
  }
  Charge(options_.costs.copier_setup);
  for (ItemId item : needed) {
    const SiteId source = PickCopySource(item);
    if (source == kInvalidSite) {
      // No operational site holds an up-to-date copy: the transaction
      // cannot proceed (Experiment 3 scenario 1's abort cause).
      if (c.batch_refresh) {
        batch_.reset();
        return;
      }
      ++counters_.txns_aborted_copier;
      ReplyAndClear(c, TxnOutcome::kAbortedCopierFailed);
      return;
    }
    c.copies_pending[source].push_back(item);
  }
  const uint32_t groups = static_cast<uint32_t>(c.copies_pending.size());
  c.copier_count += groups;
  if (c.batch_refresh) {
    counters_.batch_copier_transactions += groups;
  } else {
    counters_.copier_transactions += groups;
  }
  for (const auto& [source, items] : c.copies_pending) {
    Charge(options_.costs.ack_format);
    SendTo(source, CopyRequestArgs{c.txn.id, items});
  }
  const TxnId txn = c.txn.id;
  const bool batch = c.batch_refresh;
  c.timer = runtime_->ScheduleAfter(
      options_.ack_timeout, [this, txn, batch] {
        CoordinationTimeout(txn, batch);
      });
}

Site::Coordination* Site::CoordinationFor(TxnId txn) {
  auto it = coords_.find(txn);
  if (it != coords_.end()) return &it->second;
  if (batch_ && batch_->txn.id == txn) return &*batch_;
  return nullptr;
}

void Site::HandleCopyReply(const Message& msg) {
  const auto& args = msg.As<CopyReplyArgs>();
  Coordination* cp = CoordinationFor(args.txn);
  if (cp == nullptr || cp->phase != Coordination::Phase::kCopier) return;
  Coordination& c = *cp;
  auto pending = c.copies_pending.find(msg.from);
  if (pending == c.copies_pending.end()) return;

  // The source returns every requested item it could serve; a missing item
  // means the source's own copy turned out fail-locked (our table was
  // stale), which makes the copier transaction fail.
  for (ItemId item : pending->second) {
    const bool present =
        std::any_of(args.copies.begin(), args.copies.end(),
                    [item](const ItemCopy& copy) { return copy.item == item; });
    if (!present) {
      runtime_->CancelTimer(c.timer);
      if (c.batch_refresh) {
        batch_.reset();
        return;
      }
      ++counters_.txns_aborted_copier;
      ReplyAndClear(c, TxnOutcome::kAbortedCopierFailed);
      return;
    }
  }

  for (const ItemCopy& copy : args.copies) {
    Charge(options_.costs.copy_install_per_item);
    const ItemState state{copy.value, copy.version};
    if (db_.Holds(copy.item)) {
      const Status status = db_.InstallCopy(copy.item, state);
      if (!status.ok()) {
        MR_LOG(kWarn) << "site " << id_ << ": copier install failed: "
                      << status.ToString();
        continue;
      }
      if (options_.on_apply) {
        options_.on_apply(copy.item, copy.value, copy.version);
      }
      if (ClearFailLock(copy.item, id_)) {
        ++counters_.fail_locks_cleared;
      }
      c.refreshed_items.push_back(copy.item);
    } else {
      // Partial replication: remote read, no local copy to refresh.
      c.remote_reads[copy.item] = state;
    }
  }
  c.copies_pending.erase(pending);
  if (c.copies_pending.empty()) FinishCopierPhase(c);
}

void Site::FinishCopierPhase(Coordination& c) {
  runtime_->CancelTimer(c.timer);
  c.timer = kInvalidTimer;
  counters_.phase_copier_time.Add(runtime_->Now() - c.phase_start);
  if (!c.refreshed_items.empty()) {
    // The special transaction: "inform other sites of the fail-lock bits
    // cleared by copier transactions", run after the copier values have
    // been written at the coordinating site.
    ++counters_.clear_lock_txns_sent;
    Trace(TraceEvent::kClearLocksSent, c.txn.id, c.refreshed_items.size());
    // Broadcast to every peer address, not only the believed-up ones: the
    // special transaction is idempotent fire-and-forget, and a
    // just-recovered site this site has not heard about yet must still get
    // the clear, or it carries a spurious stale fail-lock indefinitely (a
    // state-space-checker finding; a crashed receiver just drops it and
    // has its table replaced wholesale at its next recovery).
    for (SiteId peer = 0; peer < options_.n_sites; ++peer) {
      if (peer == id_) continue;
      Charge(options_.costs.clear_locks_format);
      SendTo(peer, ClearFailLocksArgs{c.txn.id, id_, c.refreshed_items});
    }
  }
  if (c.batch_refresh) {
    batch_.reset();
    OnExecutorIdle();
    return;
  }
  ExecuteAndPrepare(c);
}

void Site::ExecuteAndPrepare(Coordination& c) {
  for (const Operation& op : c.txn.ops) {
    if (op.is_read()) {
      Charge(options_.costs.per_read_op);
      ItemState state;
      if (db_.Holds(op.item)) {
        Result<ItemState> read = db_.Read(op.item);
        MR_CHECK(read.ok()) << "read of held item failed";
        state = *read;
      } else {
        auto it = c.remote_reads.find(op.item);
        MR_CHECK(it != c.remote_reads.end())
            << "read of item " << op.item << " with no copy fetched";
        state = it->second;
      }
      c.reads.push_back(ItemCopy{op.item, state.value, state.version});
    } else {
      Charge(options_.costs.per_write_op);
      auto it = std::find_if(c.writes.begin(), c.writes.end(),
                             [&op](const ItemWrite& w) {
                               return w.item == op.item;
                             });
      if (it == c.writes.end()) {
        c.writes.push_back(ItemWrite{op.item, op.value});
      } else {
        it->value = op.value;  // last write wins within a transaction
      }
    }
  }

  // "begin phase one of protocol: issue copy update for written items to
  // every operational site".
  c.participants = OperationalPeers();
  if (c.participants.empty()) {
    FinishCommit(c);
    return;
  }
  c.phase = Coordination::Phase::kPrepare;
  c.phase_start = runtime_->Now();
  c.retries_used = 0;
  if (options_.batching.enabled() && options_.concurrency.locking()) {
    // Group commit: coalesce with other prepare-ready coordinations toward
    // the same participant set instead of opening a private 2PC round.
    EnqueueIntoBatch(c);
    return;
  }
  SendSingletonPrepares(c);
}

void Site::SendSingletonPrepares(Coordination& c) {
  c.awaiting.insert(c.participants.begin(), c.participants.end());
  // The wire participant set includes the coordinator: commit-time
  // maintenance needs the full set, identical at every site.
  std::vector<SiteId> wire_participants = c.participants;
  wire_participants.push_back(id_);
  std::sort(wire_participants.begin(), wire_participants.end());
  const std::vector<SessionEntryWire> vector_wire = session_vector_.ToWire();
  for (SiteId p : c.participants) {
    Charge(options_.costs.prepare_send_per_site);
    SendTo(p, PrepareArgs{c.txn.id, c.writes, vector_wire, wire_participants});
  }
  const TxnId txn = c.txn.id;
  c.timer = runtime_->ScheduleAfter(
      options_.ack_timeout,
      [this, txn] { CoordinationTimeout(txn, /*batch=*/false); });
}

// ---------------------------------------------------------------------------
// Group commit, coordinator side.
// ---------------------------------------------------------------------------

void Site::EnqueueIntoBatch(Coordination& c) {
  // The member holds every lock it needs and the decision to prepare is
  // made: pin now, so a wound-wait elder can never abort a transaction a
  // batch frame already (or imminently) carries. Batch membership is the
  // point of no return for wounding, like SendPrepareAck on participants.
  if (options_.concurrency.locking()) lock_manager_.Pin(c.txn.id);
  c.group = kFormingGroup;
  std::vector<SiteId> wire_participants = c.participants;
  wire_participants.push_back(id_);
  std::sort(wire_participants.begin(), wire_participants.end());
  FormingBatch& forming = forming_batches_[wire_participants];
  if (forming.members.empty()) {
    forming.participants = c.participants;
    forming.wire_participants = wire_participants;
  }
  forming.members.push_back(c.txn.id);
  if (forming.members.size() >= options_.batching.max_batch) {
    FormingBatch ready = std::move(forming);
    forming_batches_.erase(wire_participants);
    if (ready.timer != kInvalidTimer) {
      runtime_->CancelTimer(ready.timer);
      ready.timer = kInvalidTimer;
    }
    FlushFormingBatch(std::move(ready));
    return;
  }
  if (forming.timer == kInvalidTimer) {
    // With batch_linger == 0 this still defers to the end of the current
    // scheduling step, so coordinations that became ready back-to-back
    // (e.g. drained together from the request queue) coalesce.
    forming.timer = runtime_->ScheduleAfter(
        options_.batching.batch_linger, [this, wire_participants] {
          auto it = forming_batches_.find(wire_participants);
          if (it == forming_batches_.end()) return;
          FormingBatch ready = std::move(it->second);
          forming_batches_.erase(it);
          ready.timer = kInvalidTimer;
          FlushFormingBatch(std::move(ready));
        });
  }
}

void Site::FlushFormingBatch(FormingBatch forming) {
  if (forming.members.empty()) return;
  if (forming.members.size() == 1) {
    // A batch of one gains nothing from the batch frames; degrade to the
    // singleton path, byte-identical on the wire to never having batched.
    auto it = coords_.find(forming.members.front());
    if (it == coords_.end()) return;
    it->second.group = 0;
    SendSingletonPrepares(it->second);
    return;
  }
  ActiveBatch b;
  b.id = next_batch_id_++;
  b.participants = std::move(forming.participants);
  b.wire_participants = std::move(forming.wire_participants);
  b.members = std::move(forming.members);
  b.phase = ActiveBatch::Phase::kPrepare;
  b.phase_start = runtime_->Now();
  b.awaiting.insert(b.participants.begin(), b.participants.end());
  ++counters_.batch_rounds_coordinated;
  counters_.batch_members_coordinated += b.members.size();
  BatchPrepareArgs args;
  args.batch = b.id;
  args.session_vector = session_vector_.ToWire();
  args.participants = b.wire_participants;
  for (TxnId member : b.members) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;  // defensive; members cannot die
    cit->second.group = b.id;
    args.members.push_back(BatchMember{member, cit->second.writes});
  }
  for (SiteId p : b.participants) {
    Charge(options_.costs.prepare_send_per_site);
    SendTo(p, args);
  }
  const uint64_t batch_id = b.id;
  b.timer = runtime_->ScheduleAfter(options_.ack_timeout,
                                    [this, batch_id] { BatchTimeout(batch_id); });
  active_batches_.emplace(batch_id, std::move(b));
}

void Site::HandleBatchPrepareAck(const Message& msg) {
  const auto& args = msg.As<BatchPrepareAckArgs>();
  auto it = active_batches_.find(args.batch);
  if (it == active_batches_.end() ||
      it->second.phase != ActiveBatch::Phase::kPrepare) {
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  ActiveBatch& b = it->second;
  if (!args.accepted) {
    // Whole-batch session-vector veto: every member was validated under
    // the same stale view, so all of them abort (exactly the singleton
    // kAbortedStaleView path, N times over one returned vector).
    if (!args.session_vector.empty()) {
      const Status merged = session_vector_.MergeFrom(args.session_vector);
      if (!merged.ok()) {
        MR_LOG(kWarn) << "site " << id_
                      << ": bad session vector in batch prepare ack: "
                      << merged.ToString();
      }
    }
    runtime_->CancelTimer(b.timer);
    ActiveBatch dead = std::move(b);
    active_batches_.erase(it);
    AbortWholeBatch(dead, TxnOutcome::kAbortedStaleView, dead.participants);
    return;
  }
  // Member-level lock refusals are sticky across participants: a member
  // any participant refused cannot commit, but its batch-mates still can.
  for (TxnId refused : args.refused) b.refused.insert(refused);
  b.awaiting.erase(msg.from);
  if (b.awaiting.empty()) {
    runtime_->CancelTimer(b.timer);
    b.timer = kInvalidTimer;
    StartBatchCommitPhase(b);
  }
}

void Site::StartBatchCommitPhase(ActiveBatch& b) {
  const TimePoint now = runtime_->Now();
  b.commits.clear();
  b.aborts.clear();
  for (TxnId member : b.members) {
    if (b.refused.count(member)) {
      b.aborts.push_back(member);
    } else {
      b.commits.push_back(member);
    }
  }
  for (TxnId member : b.commits) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;
    counters_.phase_prepare_time.Add(now - cit->second.phase_start);
    // Members answer commit-phase decision queries from here on.
    cit->second.phase = Coordination::Phase::kCommit;
    cit->second.phase_start = now;
  }
  if (b.commits.empty()) {
    // Every member was refused: the one frame tells the participants to
    // discard, and there is nothing to await (abort is fire-and-forget,
    // as in singleton 2PC).
    BatchCommitArgs args{b.id, {}, b.aborts};
    for (SiteId p : b.participants) {
      Charge(options_.costs.ack_format);
      SendTo(p, args);
    }
    ActiveBatch dead = std::move(b);
    active_batches_.erase(dead.id);
    for (TxnId member : dead.aborts) {
      auto cit = coords_.find(member);
      if (cit == coords_.end()) continue;
      ++counters_.txns_aborted_lock_conflict;
      ReplyAndClear(cit->second, TxnOutcome::kAbortedLockConflict);
    }
    return;
  }
  b.phase = ActiveBatch::Phase::kCommit;
  b.phase_start = now;
  b.retries_used = 0;
  b.awaiting.insert(b.participants.begin(), b.participants.end());
  BatchCommitArgs args{b.id, b.commits, b.aborts};
  for (SiteId p : b.participants) {
    Charge(options_.costs.ack_format);
    SendTo(p, args);
  }
  const uint64_t batch_id = b.id;
  b.timer = runtime_->ScheduleAfter(options_.ack_timeout,
                                    [this, batch_id] { BatchTimeout(batch_id); });
  // Refused members are finished now — their abort must not wait for the
  // batch-mates' commit acks. ReplyAndClear re-enters the queue drain, so
  // work off a copy of the list, not the live batch state.
  const std::vector<TxnId> aborted = b.aborts;
  for (TxnId member : aborted) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;
    ++counters_.txns_aborted_lock_conflict;
    ReplyAndClear(cit->second, TxnOutcome::kAbortedLockConflict);
  }
}

void Site::HandleBatchCommitAck(const Message& msg) {
  const auto& args = msg.As<BatchCommitAckArgs>();
  auto it = active_batches_.find(args.batch);
  if (it == active_batches_.end() ||
      it->second.phase != ActiveBatch::Phase::kCommit) {
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  ActiveBatch& b = it->second;
  b.awaiting.erase(msg.from);
  if (b.awaiting.empty()) {
    runtime_->CancelTimer(b.timer);
    ActiveBatch done = std::move(b);
    active_batches_.erase(it);
    FinishBatchCommit(done);
  }
}

void Site::FinishBatchCommit(ActiveBatch& b) {
  const TimePoint now = runtime_->Now();
  // Install every member's writes first (per-member, so last-writer-wins
  // version ordering is preserved), then maintain fail-locks ONCE over the
  // deduplicated union: the participant set is shared, so per item the
  // maintained row is identical no matter which member wrote it, and the
  // whole batch costs one table update instead of one per member.
  std::vector<ItemWrite> union_writes;
  for (TxnId member : b.commits) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;
    counters_.phase_commit_time.Add(now - b.phase_start);
    CommitLocalWrites(member, cit->second.writes, b.wire_participants,
                      /*maintain_now=*/false);
    for (const ItemWrite& write : cit->second.writes) {
      const bool seen = std::any_of(
          union_writes.begin(), union_writes.end(),
          [&write](const ItemWrite& u) { return u.item == write.item; });
      if (!seen) union_writes.push_back(write);
    }
  }
  if (options_.maintain_fail_locks && !union_writes.empty()) {
    MaintainFailLocks(union_writes, b.wire_participants);
  }
  // Reply per member only after every install and the maintenance ran:
  // each member lands in the outcome cache individually, so a later
  // duplicated frame or decision query about any one of them is answered
  // without consulting batch state (which is gone).
  for (TxnId member : b.commits) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;
    ++counters_.txns_committed;
    ReplyAndClear(cit->second, TxnOutcome::kCommitted);
  }
}

void Site::BatchTimeout(uint64_t batch_id) {
  auto it = active_batches_.find(batch_id);
  if (it == active_batches_.end() || it->second.timer == kInvalidTimer) return;
  ActiveBatch& b = it->second;
  b.timer = kInvalidTimer;

  if (b.retries_used < options_.retry_limit) {
    ++b.retries_used;
    if (b.phase == ActiveBatch::Phase::kPrepare) {
      BatchPrepareArgs args;
      args.batch = b.id;
      args.session_vector = session_vector_.ToWire();
      args.participants = b.wire_participants;
      for (TxnId member : b.members) {
        auto cit = coords_.find(member);
        if (cit == coords_.end()) continue;
        args.members.push_back(BatchMember{member, cit->second.writes});
      }
      for (SiteId p : b.awaiting) {
        ++counters_.phase_retransmits;
        Charge(options_.costs.prepare_send_per_site);
        SendTo(p, args);
      }
    } else {
      for (SiteId p : b.awaiting) {
        ++counters_.phase_retransmits;
        Charge(options_.costs.ack_format);
        SendTo(p, BatchCommitArgs{b.id, b.commits, b.aborts});
      }
    }
    b.timer = runtime_->ScheduleAfter(
        RetryDelay(options_.ack_timeout, b.retries_used,
                   options_.retry_backoff),
        [this, batch_id] { BatchTimeout(batch_id); });
    return;
  }

  const std::vector<SiteId> silent(b.awaiting.begin(), b.awaiting.end());
  if (b.phase == ActiveBatch::Phase::kPrepare) {
    // "a participating site has failed": every member aborts (none was
    // fully prepared), the responsive participants discard in one frame,
    // and the silent ones are announced via control type 2.
    std::vector<SiteId> responsive;
    for (SiteId p : b.participants) {
      if (!b.awaiting.count(p)) responsive.push_back(p);
    }
    counters_.txns_aborted_participant += b.members.size();
    ActiveBatch dead = std::move(b);
    active_batches_.erase(batch_id);
    AbortWholeBatch(dead, TxnOutcome::kAbortedParticipantFailed, responsive);
    RunControlType2(silent);
    return;
  }
  // Commit phase: the decision stands. The silent sites leave the
  // participant set first — exactly as in singleton 2PC — so the coalesced
  // maintenance fail-locks their copies instead of clearing them.
  auto drop_silent = [&b](std::vector<SiteId>& sites) {
    sites.erase(std::remove_if(sites.begin(), sites.end(),
                               [&b](SiteId p) { return b.awaiting.count(p); }),
                sites.end());
  };
  drop_silent(b.participants);
  drop_silent(b.wire_participants);
  for (TxnId member : b.commits) {
    auto cit = coords_.find(member);
    if (cit != coords_.end()) drop_silent(cit->second.participants);
  }
  ActiveBatch done = std::move(b);
  active_batches_.erase(batch_id);
  FinishBatchCommit(done);
  RunControlType2(silent);
}

void Site::AbortWholeBatch(ActiveBatch& b, TxnOutcome outcome,
                           const std::vector<SiteId>& notify) {
  if (!notify.empty()) {
    // One frame tells every responsive participant to discard all the
    // members' staging; like singleton kAbort it is fire-and-forget.
    BatchCommitArgs args{b.id, {}, b.members};
    for (SiteId p : notify) {
      Charge(options_.costs.ack_format);
      SendTo(p, args);
    }
  }
  for (TxnId member : b.members) {
    auto cit = coords_.find(member);
    if (cit == coords_.end()) continue;
    ReplyAndClear(cit->second, outcome);
  }
}

void Site::HandlePrepareAck(const Message& msg) {
  const auto& args = msg.As<PrepareAckArgs>();
  auto it = coords_.find(args.txn);
  if (it == coords_.end() ||
      it->second.phase != Coordination::Phase::kPrepare) {
    return;
  }
  if (it->second.group != 0) {
    // A batched (or still-forming) member's prepare fate is decided by its
    // batch's acks; a singleton ack for it carries no information (its
    // `awaiting` is empty, so falling through would start a private commit
    // phase against a still-undecided batch).
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  Coordination& c = it->second;
  if (!args.accepted) {
    // A participant refused (wait-die lock conflict or session-vector
    // veto): abort everywhere. On a veto the refusal carries the
    // participant's vector; merging it catches this coordinator up so a
    // retried transaction picks the right participant set.
    const bool stale_view = !args.session_vector.empty();
    if (stale_view) {
      const Status merged = session_vector_.MergeFrom(args.session_vector);
      if (!merged.ok()) {
        MR_LOG(kWarn) << "site " << id_
                      << ": bad session vector in prepare ack: "
                      << merged.ToString();
      }
    }
    runtime_->CancelTimer(c.timer);
    c.timer = kInvalidTimer;
    for (SiteId p : c.participants) {
      Charge(options_.costs.ack_format);
      SendTo(p, AbortArgs{c.txn.id});
    }
    if (stale_view) {
      ReplyAndClear(c, TxnOutcome::kAbortedStaleView);
    } else {
      ++counters_.txns_aborted_lock_conflict;
      ReplyAndClear(c, TxnOutcome::kAbortedLockConflict);
    }
    return;
  }
  c.awaiting.erase(msg.from);
  if (c.awaiting.empty()) {
    runtime_->CancelTimer(c.timer);
    c.timer = kInvalidTimer;
    counters_.phase_prepare_time.Add(runtime_->Now() - c.phase_start);
    StartCommitPhase(c);
  }
}

void Site::StartCommitPhase(Coordination& c) {
  c.phase = Coordination::Phase::kCommit;
  c.phase_start = runtime_->Now();
  c.retries_used = 0;
  c.awaiting.insert(c.participants.begin(), c.participants.end());
  if (options_.concurrency.locking()) {
    // Past the point of no return: the decision to commit is made, so a
    // wound-wait abort is no longer possible (see LockManager::Pin).
    lock_manager_.Pin(c.txn.id);
  }
  for (SiteId p : c.participants) {
    Charge(options_.costs.ack_format);
    SendTo(p, CommitArgs{c.txn.id});
  }
  const TxnId txn = c.txn.id;
  c.timer = runtime_->ScheduleAfter(
      options_.ack_timeout,
      [this, txn] { CoordinationTimeout(txn, /*batch=*/false); });
}

void Site::HandleCommitAck(const Message& msg) {
  const TxnId txn = msg.As<CommitAckArgs>().txn;
  auto it = coords_.find(txn);
  if (it == coords_.end() ||
      it->second.phase != Coordination::Phase::kCommit) {
    return;
  }
  Coordination& c = it->second;
  c.awaiting.erase(msg.from);
  if (c.awaiting.empty()) {
    runtime_->CancelTimer(c.timer);
    c.timer = kInvalidTimer;
    counters_.phase_commit_time.Add(runtime_->Now() - c.phase_start);
    FinishCommit(c);
  }
}

void Site::FinishCommit(Coordination& c) {
  // "commit database data items; update fail-locks for data items" — the
  // coordinator's local commit happens after phase two completes. The
  // write install and the fail-lock maintenance below run inside this one
  // event, so they are atomic w.r.t. every concurrent executor.
  std::vector<SiteId> participants = c.participants;
  participants.push_back(id_);
  CommitLocalWrites(c.txn.id, c.writes, participants);
  ++counters_.txns_committed;
  ReplyAndClear(c, TxnOutcome::kCommitted);
}

void Site::CoordinationTimeout(TxnId txn, bool batch) {
  Coordination* cp =
      batch ? (batch_ ? &*batch_ : nullptr)
            : (coords_.count(txn) ? &coords_.at(txn) : nullptr);
  if (cp == nullptr || cp->timer == kInvalidTimer) return;
  Coordination& c = *cp;
  c.timer = kInvalidTimer;

  // Lossy-network retries: before declaring the silent parties failed,
  // re-send the current phase's message to exactly the sites still owed a
  // reply, with the next wait stretched by retry_backoff. Every phase
  // message is idempotent at the receiver (duplicate Prepare re-acks,
  // duplicate CommitDecision after teardown re-acks from the outcome
  // cache, duplicate copy requests re-serve), so re-sending is safe even
  // when the original was delivered and only the reply was lost.
  if (c.retries_used < options_.retry_limit) {
    ++c.retries_used;
    switch (c.phase) {
      case Coordination::Phase::kCopier:
        for (const auto& [source, items] : c.copies_pending) {
          ++counters_.phase_retransmits;
          Charge(options_.costs.ack_format);
          SendTo(source, CopyRequestArgs{c.txn.id, items});
        }
        break;
      case Coordination::Phase::kPrepare: {
        std::vector<SiteId> wire_participants = c.participants;
        wire_participants.push_back(id_);
        std::sort(wire_participants.begin(), wire_participants.end());
        const std::vector<SessionEntryWire> vector_wire =
            session_vector_.ToWire();
        for (SiteId p : c.awaiting) {
          ++counters_.phase_retransmits;
          Charge(options_.costs.prepare_send_per_site);
          SendTo(p, PrepareArgs{c.txn.id, c.writes, vector_wire,
                                wire_participants});
        }
        break;
      }
      case Coordination::Phase::kCommit:
        for (SiteId p : c.awaiting) {
          ++counters_.phase_retransmits;
          Charge(options_.costs.ack_format);
          SendTo(p, CommitArgs{c.txn.id});
        }
        break;
    }
    c.timer = runtime_->ScheduleAfter(
        RetryDelay(options_.ack_timeout, c.retries_used,
                   options_.retry_backoff),
        [this, txn, batch] { CoordinationTimeout(txn, batch); });
    return;
  }

  switch (c.phase) {
    case Coordination::Phase::kCopier: {
      // "site to which copy request sent is now down": abort the database
      // transaction and announce the failure (control type 2).
      std::vector<SiteId> silent;
      for (const auto& [source, items] : c.copies_pending) {
        silent.push_back(source);
      }
      if (!batch) {
        ++counters_.txns_aborted_copier;
        ReplyAndClear(c, TxnOutcome::kAbortedCopierFailed);
      } else {
        batch_.reset();
      }
      RunControlType2(silent);
      break;
    }
    case Coordination::Phase::kPrepare: {
      // "a participating site has failed": abort + control type 2.
      std::vector<SiteId> silent(c.awaiting.begin(), c.awaiting.end());
      for (SiteId p : c.participants) {
        if (!c.awaiting.count(p)) {
          Charge(options_.costs.ack_format);
          SendTo(p, AbortArgs{c.txn.id});
        }
      }
      ++counters_.txns_aborted_participant;
      ReplyAndClear(c, TxnOutcome::kAbortedParticipantFailed);
      RunControlType2(silent);
      break;
    }
    case Coordination::Phase::kCommit: {
      // "if commit ack not received from all participating sites then run
      // control type 2" — but the transaction still commits. The silent
      // sites leave the participant set first: they may have crashed
      // before applying the write, so the coordinator's maintenance must
      // fail-lock their copies rather than clear them (their recovery will
      // sort out which it was — a spurious lock only costs a refresh).
      std::vector<SiteId> silent(c.awaiting.begin(), c.awaiting.end());
      c.participants.erase(
          std::remove_if(c.participants.begin(), c.participants.end(),
                         [&c](SiteId p) { return c.awaiting.count(p) > 0; }),
          c.participants.end());
      FinishCommit(c);
      RunControlType2(silent);
      break;
    }
  }
}

void Site::ReplyAndClear(Coordination& c, TxnOutcome outcome) {
  const TxnId txn = c.txn.id;
  const bool batch = c.batch_refresh;
  if (options_.concurrency.locking() && !batch) {
    lock_manager_.ReleaseAll(txn);
  }
  if (c.timer != kInvalidTimer) {
    runtime_->CancelTimer(c.timer);
    c.timer = kInvalidTimer;
  }
  if (c.lock_timer != kInvalidTimer) {
    runtime_->CancelTimer(c.lock_timer);
    c.lock_timer = kInvalidTimer;
  }
  if (!batch) {
    Trace(outcome == TxnOutcome::kCommitted ? TraceEvent::kTxnCommitted
                                            : TraceEvent::kTxnAborted,
          txn, static_cast<uint64_t>(outcome));
    // Remember the outcome so duplicated requests, duplicated 2PC traffic,
    // and in-doubt decision queries arriving after this teardown can be
    // answered consistently.
    RecordOutcome(txn, outcome == TxnOutcome::kCommitted);
    Charge(options_.costs.reply_format);
    SendTo(c.client, TxnResult{txn, outcome, c.copier_count, c.reads});
    const Duration elapsed = runtime_->Now() - c.start_time;
    counters_.coord_txn_time.Add(elapsed);
    if (c.copier_count > 0) counters_.coord_txn_copier_time.Add(elapsed);
  }
  // `c` is destroyed here; do not touch it below.
  if (batch) {
    batch_.reset();
  } else {
    coords_.erase(txn);
  }
  OnExecutorIdle();
}

void Site::OnExecutorIdle() {
  if (status_ != SiteStatus::kUp) return;
  // Serve queued client transactions while executor slots are free (client
  // work has priority over proactive batch refreshes). HandleTxnRequest
  // can finish a transaction synchronously (validation reject, wait-die
  // death), re-entering this drain; the loop conditions re-check state
  // each iteration, so the nested drain simply empties the queue first.
  while (!batch_ && !queued_requests_.empty() &&
         coords_.size() < options_.concurrency.EffectiveExecutors()) {
    const Message next = queued_requests_.front();
    queued_requests_.pop_front();
    HandleTxnRequest(next);
  }
  MaybeStartBatchCopier();
}

// ---------------------------------------------------------------------------
// Participant role (Appendix A, "actions at a participating site").
// ---------------------------------------------------------------------------

void Site::HandlePrepare(const Message& msg) {
  const auto& args = msg.As<PrepareArgs>();
  auto existing = participations_.find(args.txn);
  if (existing != participations_.end()) {
    // Duplicate prepare (retransmission): re-ack, keep the staging. With
    // the locking extension, an ack before the queued locks are granted
    // would let the coordinator commit writes this site has not locked —
    // stay silent and let SendPrepareAck run when the locks arrive.
    ++counters_.duplicate_msgs_ignored;
    if (existing->second.lock_waits_pending == 0) {
      Charge(options_.costs.ack_format);
      SendTo(msg.from, PrepareAckArgs{args.txn, /*accepted=*/true, {}});
    }
    return;
  }
  const std::optional<bool> finished = RecentOutcome(args.txn);
  if (finished.has_value()) {
    // Duplicate prepare arriving after this participation was torn down.
    // If the transaction committed here, the staging is long applied:
    // re-ack so a still-retrying coordinator is not stuck. If it aborted
    // (or was discarded in doubt), re-staging a finished transaction's
    // writes would resurrect it — drop.
    ++counters_.duplicate_msgs_ignored;
    if (*finished) {
      Charge(options_.costs.ack_format);
      SendTo(msg.from, PrepareAckArgs{args.txn, /*accepted=*/true, {}});
    }
    return;
  }
  ++counters_.prepares_handled;

  // Commit-time session-vector validation: if this participant knows a
  // strictly newer session for any site than the coordinator's piggybacked
  // vector, the coordinator chose its participant set under stale
  // membership (it may have missed a recovery announce and excluded the
  // recovering site). Committing would maintain fail-locks under divergent
  // knowledge, so refuse; the coordinator merges the returned vector and
  // the client retries against a caught-up coordinator.
  if (args.session_vector.size() == options_.n_sites) {
    for (SiteId k = 0; k < options_.n_sites; ++k) {
      if (session_vector_.session(k) > args.session_vector[k].session) {
        ++counters_.prepare_session_vetoes;
        Charge(options_.costs.ack_format);
        SendTo(msg.from, PrepareAckArgs{args.txn, /*accepted=*/false,
                                        session_vector_.ToWire()});
        return;
      }
    }
    // The prepare carries the coordinator's knowledge; merging it here
    // means every participant runs fail-lock maintenance from at least the
    // membership the participant set was chosen under.
    const Status merged = session_vector_.MergeFrom(args.session_vector);
    if (!merged.ok()) {
      MR_LOG(kWarn) << "site " << id_ << ": bad session vector in prepare: "
                    << merged.ToString();
    }
  }

  Participation& part = participations_[args.txn];
  part.txn = args.txn;
  part.coordinator = msg.from;
  part.participants = args.participants;
  part.start_time = runtime_->Now();
  for (const ItemWrite& write : args.writes) {
    if (!db_.Holds(write.item)) continue;
    Charge(options_.costs.participant_stage_per_item);
    part.staged.push_back(write);
  }
  Trace(TraceEvent::kPrepareHandled, args.txn, part.staged.size());
  // The participant's patience exceeds the coordinator's ack timeout so
  // that a slow-but-alive coordinator resolves the transaction first.
  const TxnId txn = args.txn;
  part.timer = runtime_->ScheduleAfter(
      3 * options_.ack_timeout, [this, txn] { ParticipationTimeout(txn); });

  if (options_.concurrency.locking()) {
    for (const ItemWrite& write : part.staged) {
      const LockManager::Outcome outcome = lock_manager_.Acquire(
          write.item, txn, LockManager::Mode::kExclusive,
          [this, txn] { OnParticipantLockGranted(txn); });
      if (outcome == LockManager::Outcome::kRejected) {
        // Wait-die: refuse the prepare; the coordinator aborts the txn.
        ++counters_.lock_rejections;
        lock_manager_.ReleaseAll(txn);
        runtime_->CancelTimer(part.timer);
        participations_.erase(txn);
        Charge(options_.costs.ack_format);
        SendTo(msg.from, PrepareAckArgs{txn, /*accepted=*/false, {}});
        ProcessWounds();
        return;
      }
      if (outcome == LockManager::Outcome::kQueued) {
        ++counters_.lock_waits;
        ++part.lock_waits_pending;
      }
    }
    if (part.lock_waits_pending > 0) {
      if (options_.concurrency.deadlock_policy == DeadlockPolicy::kTimeout) {
        part.lock_timer = runtime_->ScheduleAfter(
            options_.concurrency.lock_wait_timeout,
            [this, txn] { ParticipantLockTimeout(txn); });
      }
      ProcessWounds();
      return;  // ack once locks arrive
    }
    ProcessWounds();
    // The wounds may have torn this participation down (a wound victim can
    // be a not-yet-acked participation at this very site). Re-look it up.
    auto self = participations_.find(txn);
    if (self == participations_.end()) return;
    SendPrepareAck(self->second);
    return;
  }
  SendPrepareAck(part);
}

void Site::OnParticipantLockGranted(TxnId txn) {
  auto it = participations_.find(txn);
  if (it == participations_.end()) return;
  Participation& part = it->second;
  if (--part.lock_waits_pending == 0) {
    if (part.lock_timer != kInvalidTimer) {
      runtime_->CancelTimer(part.lock_timer);
      part.lock_timer = kInvalidTimer;
    }
    if (part.batch != 0) {
      // A batched member acks through its batch, once nothing is waiting.
      ResolveBatchMember(part.coordinator, part.batch, txn,
                         /*accepted=*/true);
      return;
    }
    SendPrepareAck(part);
  }
}

void Site::ParticipantLockTimeout(TxnId txn) {
  auto it = participations_.find(txn);
  if (it == participations_.end()) return;
  Participation& part = it->second;
  part.lock_timer = kInvalidTimer;
  if (part.lock_waits_pending == 0) return;  // raced with the last grant
  // Refuse the prepare: the coordinator aborts the transaction, which is
  // how a participant-side lock wait surfaces as kAbortedLockTimeout there.
  ++counters_.txns_aborted_lock_timeout;
  const SiteId coordinator = part.coordinator;
  const uint64_t batch = part.batch;
  runtime_->CancelTimer(part.timer);
  lock_manager_.ReleaseAll(txn);  // also cancels the queued waits
  RecordOutcome(txn, /*committed=*/false);
  participations_.erase(it);
  if (batch != 0) {
    // The refusal rides the batch ack, member-level; batch-mates proceed.
    ResolveBatchMember(coordinator, batch, txn, /*accepted=*/false);
    return;
  }
  Charge(options_.costs.ack_format);
  SendTo(coordinator, PrepareAckArgs{txn, /*accepted=*/false, {}});
}

void Site::SendPrepareAck(Participation& part) {
  // Past the point of no return: this site has promised to commit, so a
  // wound-wait elder must wait for (not wound) this transaction's locks.
  if (options_.concurrency.locking()) lock_manager_.Pin(part.txn);
  Charge(options_.costs.ack_format);
  SendTo(part.coordinator, PrepareAckArgs{part.txn, /*accepted=*/true, {}});
}

void Site::HandleCommit(const Message& msg) {
  const TxnId txn = msg.As<CommitArgs>().txn;
  auto it = participations_.find(txn);
  if (it == participations_.end()) {
    // Duplicated (or retried) CommitDecision after this participation was
    // torn down. If the commit already happened here, the coordinator is
    // still waiting for an ack that was lost — re-ack, or its
    // retransmissions never converge. Anything else (aborted, discarded in
    // doubt, or too old to remember) must stay a no-op: the staging is
    // gone, so there is nothing correct to apply.
    const std::optional<bool> finished = RecentOutcome(txn);
    if (finished.has_value()) {
      ++counters_.duplicate_msgs_ignored;
      if (*finished) {
        Charge(options_.costs.ack_format);
        SendTo(msg.from, CommitAckArgs{txn});
      }
    }
    return;
  }
  Participation& part = it->second;
  runtime_->CancelTimer(part.timer);
  if (part.lock_timer != kInvalidTimer) runtime_->CancelTimer(part.lock_timer);
  CommitLocalWrites(part.txn, part.staged, part.participants);
  if (options_.concurrency.locking()) lock_manager_.ReleaseAll(part.txn);
  Trace(TraceEvent::kParticipantCommitted, part.txn, part.staged.size());
  RecordOutcome(part.txn, /*committed=*/true);
  Charge(options_.costs.ack_format);
  SendTo(part.coordinator, CommitAckArgs{part.txn});
  ++counters_.commits_handled;
  counters_.participant_time.Add(runtime_->Now() - part.start_time);
  participations_.erase(it);
  MaybeStartBatchCopier();
}

void Site::HandleAbort(const Message& msg) {
  const TxnId txn = msg.As<AbortArgs>().txn;
  auto it = participations_.find(txn);
  if (it == participations_.end()) {
    // Duplicated Abort after teardown: the discard already happened (or
    // there was never anything staged); nothing to undo twice.
    if (RecentOutcome(txn).has_value()) ++counters_.duplicate_msgs_ignored;
    return;
  }
  runtime_->CancelTimer(it->second.timer);
  if (it->second.lock_timer != kInvalidTimer) {
    runtime_->CancelTimer(it->second.lock_timer);
  }
  ++counters_.aborts_handled;
  const SiteId coordinator = it->second.coordinator;
  const uint64_t batch = it->second.batch;
  if (options_.concurrency.locking()) lock_manager_.ReleaseAll(it->first);
  RecordOutcome(txn, /*committed=*/false);
  participations_.erase(it);  // "discard the copy updates"
  if (batch != 0) {
    // A singleton abort (decision-query answer) can land before the batch
    // ack went out; the still-open batch must stop waiting on this member.
    ResolveBatchMember(coordinator, batch, txn, /*accepted=*/false);
  }
}

void Site::ParticipationTimeout(TxnId txn) {
  auto it = participations_.find(txn);
  if (it == participations_.end()) return;
  Participation& part = it->second;
  part.timer = kInvalidTimer;
  // Lossy-network retries: before declaring the coordinator dead, ask it
  // for the decision — the Prepare may have been answered but the
  // CommitDecision (or Abort) lost. A live coordinator re-sends the
  // decision from its in-flight state or outcome cache; a coordinator
  // with no trace of the transaction answers Abort (presumed abort).
  if (part.queries_sent < options_.retry_limit) {
    ++part.queries_sent;
    ++counters_.decision_queries_sent;
    Charge(options_.costs.ack_format);
    SendTo(part.coordinator, DecisionQueryArgs{txn});
    part.timer = runtime_->ScheduleAfter(
        RetryDelay(options_.ack_timeout, part.queries_sent,
                   options_.retry_backoff),
        [this, txn] { ParticipationTimeout(txn); });
    return;
  }
  // "coordinating site has failed": discard and run control type 2.
  ++counters_.coordinator_failures_detected;
  const SiteId coordinator = part.coordinator;
  if (part.lock_timer != kInvalidTimer) runtime_->CancelTimer(part.lock_timer);
  if (options_.concurrency.locking()) lock_manager_.ReleaseAll(it->first);
  // The in-doubt discard is a local abort; remember it so a late-arriving
  // CommitDecision duplicate cannot be mistaken for an applicable commit.
  RecordOutcome(txn, /*committed=*/false);
  participations_.erase(it);
  RunControlType2({coordinator});
}

void Site::HandleDecisionQuery(const Message& msg) {
  const TxnId txn = msg.As<DecisionQueryArgs>().txn;
  auto deciding = coords_.find(txn);
  if (deciding != coords_.end()) {
    // Still deciding. In the commit phase the decision exists and the
    // querier's CommitDecision was evidently lost: re-send it. Before the
    // commit phase there is no decision yet — stay silent and let the
    // querier's next timeout re-ask.
    if (deciding->second.phase == Coordination::Phase::kCommit) {
      ++counters_.decision_queries_answered;
      Charge(options_.costs.ack_format);
      SendTo(msg.from, CommitArgs{txn});
    }
    return;
  }
  const std::optional<bool> finished = RecentOutcome(txn);
  if (finished.has_value()) {
    ++counters_.decision_queries_answered;
    Charge(options_.costs.ack_format);
    if (*finished) {
      SendTo(msg.from, CommitArgs{txn});
    } else {
      SendTo(msg.from, AbortArgs{txn});
    }
    return;
  }
  // No trace of the transaction: presumed abort. Safe because a
  // coordinator that commits always keeps the outcome in its cache for
  // far longer than a participant keeps querying, and a coordinator that
  // stopped waiting for this participant (commit-phase timeout) removed it
  // from the participant set — the participant's copies were fail-locked
  // by everyone's commit-time maintenance, so a discard here is repaired
  // by the copier machinery, not silently divergent.
  ++counters_.decisions_presumed_abort;
  Charge(options_.costs.ack_format);
  SendTo(msg.from, AbortArgs{txn});
}

// ---------------------------------------------------------------------------
// Group commit, participant side.
// ---------------------------------------------------------------------------

void Site::HandleBatchPrepare(const Message& msg) {
  const auto& args = msg.As<BatchPrepareArgs>();
  const SiteId coordinator = msg.from;
  const auto key = std::make_pair(coordinator, args.batch);
  if (batch_participations_.count(key) > 0) {
    // Retransmission while this very batch still waits on queued locks:
    // stay silent, the ack goes out when the last wait resolves (acking
    // now would let the coordinator commit writes not yet locked here).
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  ++counters_.batch_prepares_handled;

  // Session-vector validation runs once per batch: every member was
  // chosen under the same coordinator vector, so one veto covers all of
  // them (and the coordinator aborts them all, none individually).
  if (args.session_vector.size() == options_.n_sites) {
    for (SiteId k = 0; k < options_.n_sites; ++k) {
      if (session_vector_.session(k) > args.session_vector[k].session) {
        ++counters_.prepare_session_vetoes;
        Charge(options_.costs.ack_format);
        SendTo(coordinator,
               BatchPrepareAckArgs{args.batch, /*accepted=*/false,
                                   session_vector_.ToWire(), {}});
        return;
      }
    }
    const Status merged = session_vector_.MergeFrom(args.session_vector);
    if (!merged.ok()) {
      MR_LOG(kWarn) << "site " << id_
                    << ": bad session vector in batch prepare: "
                    << merged.ToString();
    }
  }

  // The bookkeeping goes into the map before any lock traffic: a lock
  // released by one member's wait-die refusal can synchronously grant an
  // earlier member's queued request, which routes back into this record.
  BatchParticipation& bp = batch_participations_[key];
  bp.coordinator = coordinator;
  bp.batch = args.batch;
  bp.collecting = true;

  for (const BatchMember& member : args.members) {
    const TxnId txn = member.txn;
    auto existing = participations_.find(txn);
    if (existing != participations_.end()) {
      // Already staged by an earlier frame for this batch (retransmission
      // after a crash-free ack loss): account for it without re-staging.
      ++counters_.duplicate_msgs_ignored;
      bp.members.push_back(txn);
      if (existing->second.lock_waits_pending > 0) {
        existing->second.batch = args.batch;
        bp.waiting.insert(txn);
      }
      continue;
    }
    const std::optional<bool> finished = RecentOutcome(txn);
    if (finished.has_value()) {
      // Torn down already: a committed member is long applied (count it
      // accepted so the coordinator converges); an aborted one must not be
      // resurrected — report it refused, which the coordinator's abort of
      // that member makes idempotent.
      ++counters_.duplicate_msgs_ignored;
      if (*finished) {
        bp.members.push_back(txn);
      } else {
        bp.refused.push_back(txn);
      }
      continue;
    }
    ++counters_.prepares_handled;
    Participation& part = participations_[txn];
    part.txn = txn;
    part.coordinator = coordinator;
    part.participants = args.participants;
    part.start_time = runtime_->Now();
    part.batch = args.batch;
    for (const ItemWrite& write : member.writes) {
      if (!db_.Holds(write.item)) continue;
      Charge(options_.costs.participant_stage_per_item);
      part.staged.push_back(write);
    }
    Trace(TraceEvent::kPrepareHandled, txn, part.staged.size());
    part.timer = runtime_->ScheduleAfter(
        3 * options_.ack_timeout, [this, txn] { ParticipationTimeout(txn); });

    bool refused_now = false;
    if (options_.concurrency.locking()) {
      for (const ItemWrite& write : part.staged) {
        const LockManager::Outcome outcome = lock_manager_.Acquire(
            write.item, txn, LockManager::Mode::kExclusive,
            [this, txn] { OnParticipantLockGranted(txn); });
        if (outcome == LockManager::Outcome::kRejected) {
          // Wait-die refusal of this member only; its batch-mates proceed.
          ++counters_.lock_rejections;
          lock_manager_.ReleaseAll(txn);
          runtime_->CancelTimer(part.timer);
          participations_.erase(txn);
          bp.refused.push_back(txn);
          refused_now = true;
          break;
        }
        if (outcome == LockManager::Outcome::kQueued) {
          ++counters_.lock_waits;
          ++part.lock_waits_pending;
        }
      }
    }
    if (refused_now) continue;
    bp.members.push_back(txn);
    if (part.lock_waits_pending > 0) {
      bp.waiting.insert(txn);
      if (options_.concurrency.deadlock_policy == DeadlockPolicy::kTimeout) {
        part.lock_timer = runtime_->ScheduleAfter(
            options_.concurrency.lock_wait_timeout,
            [this, txn] { ParticipantLockTimeout(txn); });
      }
    }
  }
  bp.collecting = false;
  // Wound-wait victims recorded by the acquisitions above: members of this
  // very batch route into bp.refused via ResolveBatchMember, which may
  // send the ack itself once nothing is waiting. Re-look the record up.
  ProcessWounds();
  auto self = batch_participations_.find(key);
  if (self == batch_participations_.end()) return;  // acked during wounds
  if (self->second.waiting.empty()) {
    SendBatchPrepareAck(self->second);
    batch_participations_.erase(self);
  }
}

void Site::ResolveBatchMember(SiteId coordinator, uint64_t batch, TxnId txn,
                              bool accepted) {
  auto it = batch_participations_.find(std::make_pair(coordinator, batch));
  if (it == batch_participations_.end()) return;
  BatchParticipation& bp = it->second;
  bp.waiting.erase(txn);
  if (!accepted) {
    bp.members.erase(std::remove(bp.members.begin(), bp.members.end(), txn),
                     bp.members.end());
    bp.refused.push_back(txn);
  }
  if (!bp.collecting && bp.waiting.empty()) {
    SendBatchPrepareAck(bp);
    batch_participations_.erase(it);
  }
}

void Site::SendBatchPrepareAck(BatchParticipation& bp) {
  if (options_.concurrency.locking()) {
    // Past the point of no return for every accepted member, like the
    // singleton SendPrepareAck.
    for (TxnId member : bp.members) {
      if (participations_.count(member) > 0) lock_manager_.Pin(member);
    }
  }
  Charge(options_.costs.ack_format);
  SendTo(bp.coordinator,
         BatchPrepareAckArgs{bp.batch, /*accepted=*/true, {}, bp.refused});
}

void Site::HandleBatchCommit(const Message& msg) {
  const auto& args = msg.As<BatchCommitArgs>();
  const SiteId coordinator = msg.from;
  // A whole-batch abort can arrive while this site never acked (another
  // participant vetoed or the coordinator timed out first): drop the ack
  // bookkeeping outright, the per-member teardown below releases whatever
  // was staged or queued.
  batch_participations_.erase(std::make_pair(coordinator, args.batch));

  for (TxnId txn : args.aborts) {
    auto it = participations_.find(txn);
    if (it == participations_.end()) {
      if (RecentOutcome(txn).has_value()) ++counters_.duplicate_msgs_ignored;
      continue;
    }
    runtime_->CancelTimer(it->second.timer);
    if (it->second.lock_timer != kInvalidTimer) {
      runtime_->CancelTimer(it->second.lock_timer);
    }
    ++counters_.aborts_handled;
    if (options_.concurrency.locking()) lock_manager_.ReleaseAll(txn);
    RecordOutcome(txn, /*committed=*/false);
    participations_.erase(it);  // "discard the copy updates"
  }

  if (args.commits.empty()) return;  // abort-only frame, fire-and-forget

  // Install every committed member, then maintain fail-locks once over the
  // deduplicated union — the coalescing that motivates the batch frames.
  // The batch is acked only when every commit member is applied here or
  // known-committed from a duplicate; an unknown member means this site
  // discarded in doubt (or lost state), and silence lets the coordinator's
  // commit timeout remove it from the participant set so the maintenance
  // fail-locks its copies.
  std::vector<ItemWrite> union_writes;
  std::vector<SiteId> participants;
  bool all_applied = true;
  for (TxnId txn : args.commits) {
    auto it = participations_.find(txn);
    if (it == participations_.end()) {
      const std::optional<bool> finished = RecentOutcome(txn);
      if (finished.has_value() && *finished) {
        ++counters_.duplicate_msgs_ignored;  // already applied
      } else {
        all_applied = false;
      }
      continue;
    }
    Participation& part = it->second;
    runtime_->CancelTimer(part.timer);
    if (part.lock_timer != kInvalidTimer) {
      runtime_->CancelTimer(part.lock_timer);
    }
    if (participants.empty()) participants = part.participants;
    CommitLocalWrites(part.txn, part.staged, part.participants,
                      /*maintain_now=*/false);
    for (const ItemWrite& write : part.staged) {
      const bool seen = std::any_of(
          union_writes.begin(), union_writes.end(),
          [&write](const ItemWrite& u) { return u.item == write.item; });
      if (!seen) union_writes.push_back(write);
    }
    if (options_.concurrency.locking()) lock_manager_.ReleaseAll(part.txn);
    Trace(TraceEvent::kParticipantCommitted, part.txn, part.staged.size());
    RecordOutcome(part.txn, /*committed=*/true);
    ++counters_.commits_handled;
    counters_.participant_time.Add(runtime_->Now() - part.start_time);
    participations_.erase(it);
  }
  if (options_.maintain_fail_locks && !union_writes.empty()) {
    MaintainFailLocks(union_writes, participants);
  }
  if (all_applied) {
    Charge(options_.costs.ack_format);
    SendTo(coordinator, BatchCommitAckArgs{args.batch});
  }
  MaybeStartBatchCopier();
}

// ---------------------------------------------------------------------------
// Copier service and the special clear-fail-locks transaction.
// ---------------------------------------------------------------------------

void Site::HandleCopyRequest(const Message& msg) {
  if (status_ != SiteStatus::kUp) return;
  const auto& args = msg.As<CopyRequestArgs>();
  ++counters_.copy_requests_served;
  const TimePoint start = runtime_->Now();
  Charge(options_.costs.copy_serve_base);
  CopyReplyArgs reply;
  reply.txn = args.txn;
  for (ItemId item : args.items) {
    if (!db_.Holds(item)) continue;
    if (fail_locks_.IsSet(item, id_)) continue;  // own copy is stale
    Charge(options_.costs.copy_serve_per_item);
    const Result<ItemState> state = db_.Read(item);
    MR_CHECK(state.ok()) << "read of held item failed";
    reply.copies.push_back(ItemCopy{item, state->value, state->version});
  }
  counters_.copy_serve_time.Add(runtime_->Now() - start);
  Trace(TraceEvent::kCopyServed, msg.from, reply.copies.size());
  SendTo(msg.from, std::move(reply));
}

void Site::HandleClearFailLocks(const Message& msg) {
  const auto& args = msg.As<ClearFailLocksArgs>();
  if (args.refreshed_site >= options_.n_sites) return;  // untrusted input
  ++counters_.clear_lock_txns_received;
  const TimePoint start = runtime_->Now();
  Charge(options_.costs.clear_locks_apply_base +
         options_.costs.clear_locks_apply_per_item *
             static_cast<Duration>(args.items.size()));
  for (ItemId item : args.items) {
    if (item >= options_.db_size) continue;
    if (ClearFailLock(item, args.refreshed_site)) {
      ++counters_.fail_locks_cleared;
    }
  }
  counters_.clear_locks_time.Add(runtime_->Now() - start);
}

// ---------------------------------------------------------------------------
// Control transactions.
// ---------------------------------------------------------------------------

void Site::StartRecovery() {
  if (status_ != SiteStatus::kDown) return;
  status_ = SiteStatus::kWaitingToRecover;
  ++counters_.control1_initiated;
  recovery_.emplace();
  recovery_->new_session = session_vector_.session(id_) + 1;
  recovery_->start_time = runtime_->Now();
  // The bumped session is recorded (stable storage) at announce time, not
  // at completion: if this recovery is cut short by another crash, the
  // next incarnation must announce a strictly newer session — peers that
  // recorded (this_session, down) via failure detection ignore a
  // re-announce of the same session ("down wins" at equal sessions), which
  // would leave this site permanently excluded.
  session_vector_.Set(id_, recovery_->new_session,
                      SiteStatus::kWaitingToRecover);
  Trace(TraceEvent::kRecoveryStarted, recovery_->new_session);
  // Announce to every other database site; the local vector may be
  // arbitrarily stale, and sites that are actually down simply ignore it.
  for (SiteId t = 0; t < options_.n_sites; ++t) {
    if (t == id_) continue;
    Charge(options_.costs.announce_format);
    SendTo(t, RecoveryAnnounceArgs{id_, recovery_->new_session});
    recovery_->awaiting.insert(t);
  }
  if (recovery_->awaiting.empty()) {
    CompleteRecovery();
    return;
  }
  recovery_->timer = runtime_->ScheduleAfter(options_.ack_timeout,
                                             [this] { RecoveryTimeout(); });
}

void Site::RecoveryTimeout() {
  if (!recovery_) return;
  recovery_->timer = kInvalidTimer;
  // Lossy-network retries: the announce (or an info reply) may have been
  // lost rather than the peers being down. Re-announce the SAME session to
  // the still-silent peers — receivers that already served it re-serve
  // their info without touching their vectors, so a re-announce is
  // idempotent — and stretch the next wait. Completing with partial info
  // is safe but costly (missing responders can force a blind completion
  // that fail-locks everything), so patience is cheap insurance.
  if (recovery_->retries_used < options_.retry_limit &&
      !recovery_->awaiting.empty()) {
    ++recovery_->retries_used;
    ++counters_.recovery_reannounces;
    for (SiteId t : recovery_->awaiting) {
      Charge(options_.costs.announce_format);
      SendTo(t, RecoveryAnnounceArgs{id_, recovery_->new_session});
    }
    recovery_->timer = runtime_->ScheduleAfter(
        RetryDelay(options_.ack_timeout, recovery_->retries_used,
                   options_.retry_backoff),
        [this] { RecoveryTimeout(); });
    return;
  }
  CompleteRecovery();
}

Status Site::RestoreImage(const std::vector<ItemCopy>& image) {
  if (status_ != SiteStatus::kDown) {
    return Status::FailedPrecondition(
        "RestoreImage requires the site to be down");
  }
  for (const ItemCopy& copy : image) {
    if (copy.item >= options_.db_size) {
      return Status::InvalidArgument(
          StrFormat("image item %u out of range", copy.item));
    }
    MINIRAID_RETURN_IF_ERROR(
        db_.InstallCopy(copy.item, ItemState{copy.value, copy.version}));
  }
  // The durable image stands in for the lost volatile state: recovery can
  // rely on the operational sites' fail-locks to cover exactly the updates
  // missed while down, instead of conservatively locking everything.
  state_lost_ = false;
  return Status::Ok();
}

void Site::HandleRecoveryAnnounce(const Message& msg) {
  if (status_ != SiteStatus::kUp) return;
  const auto& args = msg.As<RecoveryAnnounceArgs>();
  if (args.recovering_site >= options_.n_sites) return;  // untrusted input
  // A site can only leave the down state through a strictly newer session;
  // a stale announce (this session already superseded by failure news or a
  // later incarnation) must not resurrect it.
  const SessionNumber recorded = session_vector_.session(args.recovering_site);
  if (args.new_session < recorded) return;
  if (args.new_session == recorded) {
    // Same session again: either our earlier info reply was lost and the
    // recovering site re-announced, or the announce itself was duplicated.
    // If our vector still shows the site up for this session we already
    // served it — re-serve the info (a fresh snapshot is at least as
    // complete) without touching the vector. If we recorded it down at
    // this session, "down wins": serving would let a site everyone
    // considers failed complete recovery.
    if (!session_vector_.IsUp(args.recovering_site)) return;
    ++counters_.duplicate_msgs_ignored;
    const std::vector<FailLockRow> rows =
        RecoveryInfoRows(args.recovering_site);
    Charge(options_.costs.recovery_format_base +
           options_.costs.recovery_format_per_item *
               static_cast<Duration>(rows.size()));
    SendTo(args.recovering_site,
           RecoveryInfoArgs{session_vector_.ToWire(), rows});
    return;
  }
  session_vector_.Set(args.recovering_site, args.new_session,
                      SiteStatus::kUp);
  ++counters_.control1_served;
  const TimePoint start = runtime_->Now();
  const std::vector<FailLockRow> rows =
      RecoveryInfoRows(args.recovering_site);
  Charge(options_.costs.recovery_format_base +
         options_.costs.recovery_format_per_item *
             static_cast<Duration>(rows.size()));
  SendTo(args.recovering_site,
         RecoveryInfoArgs{session_vector_.ToWire(), rows});
  Trace(TraceEvent::kRecoveryServed, args.recovering_site, rows.size());
  counters_.type1_serve_time.Add(runtime_->Now() - start);
}

std::vector<FailLockRow> Site::RecoveryInfoRows(SiteId recovering) const {
  FailLockTable snapshot = fail_locks_;
  // Prospective maintenance for in-flight 2PC (see the declaration
  // comment): each transaction past its prepare will, when it applies,
  // rewrite every written item's row to holders-outside-the-participant-
  // set, so the reply serves that future row. Both directions matter: the
  // set bits cover a commit that applies after recovery completes (no
  // later snapshot can carry them), the clears keep the recovering site
  // from installing bits the commit is about to clear everywhere else.
  // The copier phase is excluded — no 2PC is pinned yet, nothing is
  // guaranteed to apply.
  auto prospective = [&](const std::vector<ItemWrite>& writes,
                         const std::vector<SiteId>& participants,
                         SiteId coordinator) {
    for (const ItemWrite& w : writes) {
      for (SiteId t = 0; t < options_.n_sites; ++t) {
        if (!holders_.Holds(w.item, t)) continue;
        const bool participated =
            t == coordinator ||
            std::find(participants.begin(), participants.end(), t) !=
                participants.end();
        if (participated) {
          // The recovering site's own column is exempt from prospective
          // clears (see the declaration comment).
          if (t != recovering) snapshot.Clear(w.item, t);
        } else {
          snapshot.Set(w.item, t);
        }
      }
    }
  };
  for (const auto& [txn, c] : coords_) {
    if (c.phase == Coordination::Phase::kCopier) continue;
    prospective(c.writes, c.participants, id_);  // c.participants omits id_
  }
  for (const auto& [txn, part] : participations_) {
    // part.participants is the wire set from the prepare: coordinator
    // included.
    prospective(part.staged, part.participants, kInvalidSite);
  }
  return snapshot.ToWire();
}

void Site::HandleRecoveryInfo(const Message& msg) {
  if (!recovery_) {
    // Info arriving after recovery completed (or was never started):
    // a duplicate or a straggler. Either way the table union is done;
    // installing more rows now would clobber post-recovery state.
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  if (recovery_->awaiting.erase(msg.from) == 0) {
    // Second info from the same responder (duplicated reply, or a
    // re-announce crossing the original reply): the first one is already
    // in `infos`, and unioning a newer snapshot of the same table could
    // resurrect fail-locks the special transaction cleared in between.
    ++counters_.duplicate_msgs_ignored;
    return;
  }
  Charge(options_.costs.recovery_install);
  recovery_->infos.push_back(msg.As<RecoveryInfoArgs>());
  if (recovery_->awaiting.empty()) {
    runtime_->CancelTimer(recovery_->timer);
    recovery_->timer = kInvalidTimer;
    CompleteRecovery();
  }
}

void Site::CompleteRecovery() {
  if (!recovery_) return;
  Recovery recovery = std::move(*recovery_);
  recovery_.reset();
  if (recovery.timer != kInvalidTimer) {
    runtime_->CancelTimer(recovery.timer);
  }
  if (!recovery.infos.empty()) {
    // The operational sites' tables are authoritative: they tracked every
    // update committed while this site was down, including clears this
    // site never saw. Adopt the union of their fail-lock tables and
    // discard the frozen local one; merge their session vectors.
    FailLockTable fresh(options_.db_size, options_.n_sites);
    for (const RecoveryInfoArgs& info : recovery.infos) {
      const Status merged = fresh.MergeFrom(info.fail_locks);
      if (!merged.ok()) {
        MR_LOG(kWarn) << "site " << id_
                      << ": bad fail-lock rows in recovery info: "
                      << merged.ToString();
      }
    }
    fail_locks_ = std::move(fresh);
    for (const RecoveryInfoArgs& info : recovery.infos) {
      const Status merged = session_vector_.MergeFrom(info.session_vector);
      if (!merged.ok()) {
        MR_LOG(kWarn) << "site " << id_
                      << ": bad session vector in recovery info: "
                      << merged.ToString();
      }
    }
  } else {
    // No operational site answered (every responder crashed first, or this
    // site is alone). The frozen local table cannot know which of its
    // copies missed updates committed while it was down, so conservatively
    // fail-lock every held copy; each clears on its first refresh. Coming
    // up with a trusted-but-stale table was refuted by the state-space
    // checker (a commit can land between a responder's reply and its
    // crash).
    ++counters_.recovery_blind_completions;
    for (ItemId item = 0; item < options_.db_size; ++item) {
      if (db_.Holds(item)) fail_locks_.Set(item, id_);
    }
  }
  // Replay fail-lock mutations that happened during the waiting-to-recover
  // window: the responders snapshotted their tables at announce time, so a
  // commit or clear-fail-locks processed here after the announce is not in
  // the installed union and would otherwise be forgotten.
  for (const auto& [key, locked] : recovery.window_journal) {
    ++counters_.recovery_window_replays;
    if (locked) {
      fail_locks_.Set(key.first, key.second);
    } else {
      fail_locks_.Clear(key.first, key.second);
    }
  }
  session_vector_.Set(id_, recovery.new_session, SiteStatus::kUp);
  if (state_lost_) {
    // Cold restart: even copies the operational sites think are fine are
    // gone locally. Conservatively fail-lock every held copy so reads go
    // through copier transactions until each copy is refreshed.
    for (ItemId item = 0; item < options_.db_size; ++item) {
      if (db_.Holds(item)) fail_locks_.Set(item, id_);
    }
    state_lost_ = false;
  }
  status_ = SiteStatus::kUp;
  counters_.recovery_time.Add(runtime_->Now() - recovery.start_time);
  Trace(TraceEvent::kRecoveryCompleted, recovery.new_session,
        fail_locks_.CountForSite(id_));
  MaybeStartBatchCopier();
}

void Site::HandleFailureAnnounce(const Message& msg) {
  const auto& args = msg.As<FailureAnnounceArgs>();
  ++counters_.control2_received;
  const TimePoint start = runtime_->Now();
  Charge(options_.costs.failure_update);
  for (const FailedSiteEntry& entry : args.failed_sites) {
    if (entry.site >= options_.n_sites || entry.site == id_) continue;
    const SessionNumber local = session_vector_.session(entry.site);
    if (entry.session > local) {
      session_vector_.Set(entry.site, entry.session, SiteStatus::kDown);
      Trace(TraceEvent::kFailureLearned, entry.site);
    } else if (entry.session == local) {
      session_vector_.MarkDown(entry.site);
      Trace(TraceEvent::kFailureLearned, entry.site);
    }
    // else: stale news about an epoch the site already left; ignore.
  }
  counters_.type2_receive_time.Add(runtime_->Now() - start);
  MaybeRunType3();
}

void Site::RunControlType2(const std::vector<SiteId>& failed) {
  std::vector<FailedSiteEntry> entries;
  for (SiteId f : failed) {
    if (f >= options_.n_sites || f == id_) continue;
    if (session_vector_.IsUp(f)) session_vector_.MarkDown(f);
    Trace(TraceEvent::kFailureDetected, f);
    entries.push_back(FailedSiteEntry{f, session_vector_.session(f)});
  }
  if (entries.empty()) return;
  ++counters_.control2_initiated;
  Charge(options_.costs.failure_detect);
  for (SiteId peer : OperationalPeers()) {
    Charge(options_.costs.ack_format);
    SendTo(peer, FailureAnnounceArgs{entries});
  }
  MaybeRunType3();
}

void Site::HandleCopyCreate(const Message& msg) {
  const auto& args = msg.As<CopyCreateArgs>();
  if (args.backup_site >= options_.n_sites) return;  // untrusted input
  for (const ItemCopy& copy : args.copies) {
    if (copy.item >= options_.db_size) continue;
    holders_.Add(copy.item, args.backup_site);
    if (args.backup_site == id_) {
      const Status status =
          db_.InstallCopy(copy.item, ItemState{copy.value, copy.version});
      if (status.ok()) {
        ++counters_.control3_copies_installed;
        if (options_.on_apply) {
          options_.on_apply(copy.item, copy.value, copy.version);
        }
        ClearFailLock(copy.item, id_);  // the new copy is up to date
      } else {
        MR_LOG(kWarn) << "site " << id_ << ": type-3 install failed: "
                      << status.ToString();
      }
    }
  }
}

void Site::MaybeRunType3() {
  if (!options_.enable_type3 || status_ != SiteStatus::kUp) return;
  // Collect items whose only operational up-to-date copy is ours, keyed by
  // the chosen backup site.
  std::map<SiteId, std::vector<ItemCopy>> plans;
  for (ItemId item = 0; item < options_.db_size; ++item) {
    if (!db_.Holds(item) || fail_locks_.IsSet(item, id_)) continue;
    bool other_fresh_copy = false;
    for (SiteId t = 0; t < options_.n_sites; ++t) {
      if (t == id_) continue;
      if (session_vector_.IsUp(t) && holders_.Holds(item, t) &&
          !fail_locks_.IsSet(item, t)) {
        other_fresh_copy = true;
        break;
      }
    }
    if (other_fresh_copy) continue;
    // Back-up target: the lowest-id operational peer without a copy.
    SiteId backup = kInvalidSite;
    for (SiteId t : OperationalPeers()) {
      if (!holders_.Holds(item, t)) {
        backup = t;
        break;
      }
    }
    if (backup == kInvalidSite) continue;  // nowhere to place a copy
    const Result<ItemState> state = db_.Read(item);
    MR_CHECK(state.ok()) << "read of held item failed";
    plans[backup].push_back(ItemCopy{item, state->value, state->version});
  }
  for (auto& [backup, copies] : plans) {
    ++counters_.control3_initiated;
    Trace(TraceEvent::kType3Backup, backup, copies.size());
    for (const ItemCopy& copy : copies) holders_.Add(copy.item, backup);
    // Broadcast so every operational site's holders table learns of the
    // new copies; only the backup installs the data.
    for (SiteId peer : OperationalPeers()) {
      Charge(options_.costs.ack_format);
      SendTo(peer, CopyCreateArgs{backup, copies});
    }
  }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

void Site::CommitLocalWrites(TxnId writer, const std::vector<ItemWrite>& writes,
                             const std::vector<SiteId>& participants,
                             bool maintain_now) {
  for (const ItemWrite& write : writes) {
    if (!db_.Holds(write.item)) continue;
    Charge(options_.costs.commit_install_per_item);
    const Status status = db_.CommitWrite(write.item, write.value, writer);
    if (status.ok() && options_.on_apply) {
      options_.on_apply(write.item, write.value, writer);
    }
    if (status.code() == StatusCode::kInvalidArgument) {
      // A concurrent transaction with a higher id already committed this
      // item (last-writer-wins ordering keeps replicas convergent when
      // transactions overlap); skipping the stale write is correct.
      MR_LOG(kDebug) << "site " << id_ << ": LWW skip on item " << write.item
                     << " for txn " << writer;
    } else if (!status.ok()) {
      MR_LOG(kWarn) << "site " << id_ << ": commit of item " << write.item
                    << " failed: " << status.ToString();
    }
  }
  if (maintain_now && options_.maintain_fail_locks) {
    MaintainFailLocks(writes, participants);
  }
}

void Site::MaintainFailLocks(const std::vector<ItemWrite>& writes,
                             const std::vector<SiteId>& participants) {
  // "As a transaction committed a particular copy on a site, the nominal
  // session vector was examined and the fail-lock bits for each written
  // data item were set for each failed site" — and re-cleared for each
  // operational site. The set/clear decision is keyed on the commit's
  // participant set rather than each maintainer's believed-up view: the
  // set is identical at every participant by construction, so the written
  // rows stay convergent even while session vectors are skewed (the
  // state-space checker refuted view-keyed maintenance; see
  // docs/ANALYSIS.md "Model checking").
  for (const ItemWrite& write : writes) {
    Charge(options_.costs.faillock_maint_per_item);
    for (SiteId t = 0; t < options_.n_sites; ++t) {
      if (!holders_.Holds(write.item, t)) continue;
      const bool participated =
          std::find(participants.begin(), participants.end(), t) !=
          participants.end();
      if (participated) {
        if (ClearFailLock(write.item, t)) ++counters_.fail_locks_cleared;
      } else {
        if (SetFailLock(write.item, t)) ++counters_.fail_locks_set;
      }
    }
  }
}

void Site::RecordOutcome(TxnId txn, bool committed) {
  auto [it, inserted] = recent_outcomes_.emplace(txn, committed);
  if (!inserted) {
    it->second = committed;
    return;
  }
  recent_outcomes_fifo_.push_back(txn);
  while (recent_outcomes_fifo_.size() > kMaxRecentOutcomes) {
    recent_outcomes_.erase(recent_outcomes_fifo_.front());
    recent_outcomes_fifo_.pop_front();
  }
}

std::optional<bool> Site::RecentOutcome(TxnId txn) const {
  auto it = recent_outcomes_.find(txn);
  if (it == recent_outcomes_.end()) return std::nullopt;
  return it->second;
}

bool Site::SetFailLock(ItemId item, SiteId site) {
  if (status_ == SiteStatus::kWaitingToRecover && recovery_) {
    recovery_->window_journal[{item, site}] = true;
  }
  return fail_locks_.Set(item, site);
}

bool Site::ClearFailLock(ItemId item, SiteId site) {
  if (status_ == SiteStatus::kWaitingToRecover && recovery_) {
    recovery_->window_journal[{item, site}] = false;
  }
  return fail_locks_.Clear(item, site);
}

void Site::MaybeStartBatchCopier() {
  if (options_.batch_copier_threshold <= 0.0) return;  // step two disabled
  if (status_ != SiteStatus::kUp || !IsIdle()) return;
  const uint32_t own = fail_locks_.CountForSite(id_);
  if (own == 0) return;
  if (fail_locks_.FractionLockedFor(id_) > options_.batch_copier_threshold) {
    return;  // still in step one: refresh on demand only
  }
  const std::vector<ItemId> items =
      fail_locks_.ItemsLockedFor(id_, options_.batch_copier_chunk);
  Trace(TraceEvent::kBatchCopierStarted, items.size());
  batch_.emplace();
  batch_->batch_refresh = true;
  batch_->start_time = runtime_->Now();
  StartCopierPhase(*batch_, items);
}

// ---------------------------------------------------------------------------
// Wound-wait victim teardown.
// ---------------------------------------------------------------------------

void Site::ProcessWounds() {
  // Wounds recorded by the LockManager during the event we just ran. The
  // manager never fires callbacks from Acquire, so draining here — after our
  // own bookkeeping is consistent — is the only place victims are aborted.
  for (const TxnId victim : lock_manager_.TakePendingWounds()) {
    AbortWoundedTxn(victim);
  }
}

void Site::AbortWoundedTxn(TxnId victim) {
  auto cit = coords_.find(victim);
  if (cit != coords_.end()) {
    Coordination& c = cit->second;
    ++counters_.lock_wounds;
    ++counters_.txns_aborted_deadlock;
    if (c.phase == Coordination::Phase::kPrepare) {
      // Participants may have staged (and locked) the writes: abort them.
      for (SiteId p : c.participants) {
        Charge(options_.costs.ack_format);
        SendTo(p, AbortArgs{c.txn.id});
      }
    }
    // kCommit-phase coordinations are pinned and never wounded; kCopier /
    // lock-wait coordinations have nothing remote to undo.
    ReplyAndClear(c, TxnOutcome::kAbortedDeadlock);
    return;
  }
  auto pit = participations_.find(victim);
  if (pit != participations_.end()) {
    // A not-yet-acked participation (acked ones are pinned): refuse the
    // prepare so the coordinator aborts the transaction everywhere.
    Participation& part = pit->second;
    ++counters_.lock_wounds;
    const SiteId coordinator = part.coordinator;
    const uint64_t batch = part.batch;
    runtime_->CancelTimer(part.timer);
    if (part.lock_timer != kInvalidTimer) {
      runtime_->CancelTimer(part.lock_timer);
    }
    lock_manager_.ReleaseAll(victim);
    RecordOutcome(victim, /*committed=*/false);
    participations_.erase(pit);
    if (batch != 0) {
      // A wounded batched member refuses through its batch's ack.
      ResolveBatchMember(coordinator, batch, victim, /*accepted=*/false);
      return;
    }
    Charge(options_.costs.ack_format);
    SendTo(coordinator, PrepareAckArgs{victim, /*accepted=*/false, {}});
    return;
  }
  // The victim finished (or was torn down) between wound and drain; its
  // ReleaseAll already cleared the wound mark for any future incarnation.
  lock_manager_.ReleaseAll(victim);
}

}  // namespace miniraid

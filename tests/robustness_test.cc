// Adversarial robustness: duplicate deliveries, stray and stale protocol
// messages, out-of-range untrusted input, and randomized message fuzzing
// against a live cluster. The contract: a site never crashes, never
// corrupts its replica, and keeps serving transactions.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

ClusterOptions SmallOptions() {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 8;
  return options;
}

TEST(RobustnessTest, OutOfRangeItemsRejectedNotCrashed) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(999, 1)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kRejectedInvalid);
  // The cluster still works.
  EXPECT_EQ(cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 1)}), 0).outcome,
            TxnOutcome::kCommitted);
}

TEST(RobustnessTest, DuplicateCommitIsIdempotent) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 5)}), 0).outcome,
            TxnOutcome::kCommitted);
  // Replay the commit to a participant after the transaction finished.
  (void)cluster.transport().Send(MakeMessage(0, 1, CommitArgs{1}));
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.site(1).db().Read(2)->value, 5);
  EXPECT_EQ(cluster.site(1).db().Read(2)->version, 1u);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(RobustnessTest, StrayAcksAndRepliesIgnored) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  (void)cluster.transport().Send(MakeMessage(1, 0, PrepareAckArgs{77, true, {}}));
  (void)cluster.transport().Send(MakeMessage(1, 0, CommitAckArgs{77}));
  CopyReplyArgs stray_copy;
  stray_copy.txn = 77;
  stray_copy.copies = {ItemCopy{1, 999, 42}};
  (void)cluster.transport().Send(MakeMessage(1, 0, stray_copy));
  cluster.RunUntilIdle();
  // The stray copy reply must not have been installed.
  EXPECT_EQ(cluster.site(0).db().Read(1)->version, 0u);
  EXPECT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kCommitted);
}

TEST(RobustnessTest, StaleAbortForFinishedTxnIgnored) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 5)}), 0).outcome,
            TxnOutcome::kCommitted);
  (void)cluster.transport().Send(MakeMessage(0, 1, AbortArgs{1}));
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.site(1).db().Read(2)->value, 5);
}

TEST(RobustnessTest, MalformedClearFailLocksIgnored) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  ClearFailLocksArgs bad;
  bad.txn = 1;
  bad.refreshed_site = 99;           // no such site
  bad.items = {0, 1, 7, 9999};       // includes out-of-range items
  (void)cluster.transport().Send(MakeMessage(1, 0, bad));
  ClearFailLocksArgs bad_items;
  bad_items.txn = 2;
  bad_items.refreshed_site = 1;
  bad_items.items = {9999};
  (void)cluster.transport().Send(MakeMessage(1, 0, bad_items));
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Read(0)}), 0).outcome,
            TxnOutcome::kCommitted);
}

TEST(RobustnessTest, MalformedControlMessagesIgnored) {
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  (void)cluster.transport().Send(
      MakeMessage(1, 0, RecoveryAnnounceArgs{99, 5}));
  CopyCreateArgs bad_create;
  bad_create.backup_site = 99;
  bad_create.copies = {ItemCopy{0, 1, 1}};
  (void)cluster.transport().Send(MakeMessage(1, 0, bad_create));
  FailureAnnounceArgs bad_failure;
  bad_failure.failed_sites = {FailedSiteEntry{99, 1},
                              FailedSiteEntry{0, 1}};  // includes receiver
  (void)cluster.transport().Send(MakeMessage(1, 0, bad_failure));
  cluster.RunUntilIdle();
  // Receiver did not mark itself down and still coordinates.
  EXPECT_TRUE(cluster.site(0).is_up());
  EXPECT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kCommitted);
}

TEST(RobustnessTest, WireFuzzAgainstLiveCluster) {
  // Generate random (structurally valid, semantically junk) messages of
  // every type, deliver them between real transactions, and require the
  // cluster to stay consistent and alive.
  auto cluster_owner = MakeSimCluster(SmallOptions());
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 8;
  wopts.max_txn_size = 4;
  wopts.seed = 1;
  UniformWorkload workload(wopts);
  Rng fuzz(997);

  auto random_payload = [&fuzz]() -> Payload {
    const auto pick = fuzz.NextBounded(12);
    const TxnId txn = fuzz.NextBounded(1000);
    const ItemId item = static_cast<ItemId>(fuzz.NextBounded(16));
    const SiteId site = static_cast<SiteId>(fuzz.NextBounded(8));
    switch (pick) {
      case 0:
        return PrepareArgs{txn, {ItemWrite{item, Value(fuzz.Next())}}, {}, {site}};
      case 1:
        return PrepareAckArgs{txn, true, {}};
      case 2:
        return CommitArgs{txn};
      case 3:
        return CommitAckArgs{txn};
      case 4:
        return AbortArgs{txn};
      case 5:
        return CopyRequestArgs{txn, {item, item}};
      case 6:
        return CopyReplyArgs{txn, {ItemCopy{item, 7, fuzz.Next() % 4}}};
      case 7:
        return ClearFailLocksArgs{txn, site, {item}};
      case 8:
        return RecoveryAnnounceArgs{site, fuzz.Next() % 8};
      case 9:
        return RecoveryInfoArgs{{}, {FailLockRow{item, fuzz.Next()}}};
      case 10:
        return FailureAnnounceArgs{{FailedSiteEntry{site, fuzz.Next() % 4}}};
      default:
        return CopyCreateArgs{site, {ItemCopy{item, 1, 1}}};
    }
  };

  uint64_t committed = 0;
  for (int round = 0; round < 120; ++round) {
    for (int j = 0; j < 3; ++j) {
      const SiteId from = static_cast<SiteId>(fuzz.NextBounded(4));
      const SiteId to = static_cast<SiteId>(fuzz.NextBounded(3));
      (void)cluster.transport().Send(MakeMessage(from, to, random_payload()));
    }
    cluster.RunUntilIdle();
    const TxnResult reply = cluster.RunTxn(
        workload.Next(), static_cast<SiteId>(fuzz.NextBounded(3)));
    committed += reply.outcome == TxnOutcome::kCommitted;
  }
  // Fuzz traffic may spuriously mark sites down (forged type-2) or stale,
  // but the cluster must keep making progress and stay uncorrupted for
  // every copy it believes fresh.
  EXPECT_GT(committed, 60u);
}

}  // namespace
}  // namespace miniraid

// Concurrent transaction processing — the direction the paper names as
// future work ("we also plan to run this protocol in the complete RAID
// system and take into account other factors such as concurrency
// control"). Multiple transactions may be outstanding at once: different
// sites coordinate concurrently, a busy coordinator queues overlapping
// requests, and participants stage several transactions simultaneously.
//
// Without a lock manager, concurrent writers to the same item are ordered
// by last-writer-wins on the transaction id (versions are monotone), which
// keeps all replicas convergent — serializability of reads is explicitly
// out of scope, as it was for the paper.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

ClusterOptions Options(uint32_t n_sites, uint32_t db_size = 12) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  return options;
}

/// Submits all (txn, coordinator) pairs before running the simulation, so
/// the coordinations genuinely overlap in virtual time.
std::vector<TxnResult> RunConcurrently(
    SimCluster& cluster,
    const std::vector<std::pair<TxnSpec, SiteId>>& batch) {
  std::vector<std::optional<TxnResult>> slots(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    cluster.managing().Submit(
        batch[i].first, batch[i].second,
        [&slots, i](const TxnResult& reply) { slots[i] = reply; });
  }
  cluster.RunUntilIdle();
  std::vector<TxnResult> replies;
  for (auto& slot : slots) {
    EXPECT_TRUE(slot.has_value()) << "missing reply";
    replies.push_back(slot.value_or(TxnResult{}));
  }
  return replies;
}

TEST(ConcurrencyTest, DisjointWritesAtDifferentCoordinators) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                {MakeTxn(2, {Operation::Write(1, 20)}), 1},
                {MakeTxn(3, {Operation::Write(2, 30)}), 2}});
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.site(s).db().Read(0)->value, 10);
    EXPECT_EQ(cluster.site(s).db().Read(1)->value, 20);
    EXPECT_EQ(cluster.site(s).db().Read(2)->value, 30);
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(ConcurrencyTest, ConflictingWritesConvergeByLastWriterWins) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(5, 100)}), 0},
                {MakeTxn(2, {Operation::Write(5, 200)}), 1},
                {MakeTxn(3, {Operation::Write(5, 300)}), 2}});
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  // The highest transaction id wins everywhere, whatever the arrival
  // interleaving at each site.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.site(s).db().Read(5)->value, 300) << "site " << s;
    EXPECT_EQ(cluster.site(s).db().Read(5)->version, 3u) << "site " << s;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(ConcurrencyTest, BusyCoordinatorQueuesInOrder) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  std::vector<std::pair<TxnSpec, SiteId>> batch;
  for (TxnId t = 1; t <= 10; ++t) {
    batch.push_back({MakeTxn(t, {Operation::Write(0, Value(t))}), 0});
  }
  const auto replies = RunConcurrently(cluster, batch);
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  // FIFO queue + serial execution: the last submitted wins.
  EXPECT_EQ(cluster.site(0).db().Read(0)->version, 10u);
  EXPECT_EQ(cluster.site(1).db().Read(0)->value, Value(10));
}

TEST(ConcurrencyTest, ParticipantsHoldMultipleStagings) {
  // Sites 0 and 1 both coordinate; site 2 participates in both at once.
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10), Operation::Write(1, 11)}),
                 0},
                {MakeTxn(2, {Operation::Write(2, 22), Operation::Write(3, 33)}),
                 1}});
  EXPECT_EQ(replies[0].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(replies[1].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(2).db().Read(1)->value, 11);
  EXPECT_EQ(cluster.site(2).db().Read(3)->value, 33);
  EXPECT_EQ(cluster.site(2).counters().prepares_handled, 2u);
  EXPECT_EQ(cluster.site(2).counters().commits_handled, 2u);
}

TEST(ConcurrencyTest, ConcurrentLoadWithFailureStaysConsistent) {
  auto cluster_owner = MakeSimCluster(Options(4, 20));
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 20;
  wopts.max_txn_size = 5;
  wopts.seed = 11;
  UniformWorkload workload(wopts);

  // Waves of 8 concurrent transactions across all sites; crash a site
  // between waves and recover it later.
  auto wave = [&](const std::vector<SiteId>& coords) {
    std::vector<std::pair<TxnSpec, SiteId>> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back({workload.Next(), coords[i % coords.size()]});
    }
    (void)RunConcurrently(cluster, batch);
  };

  wave({0, 1, 2, 3});
  cluster.Fail(3);
  wave({0, 1, 2});  // detection aborts some; ROWAA continues
  wave({0, 1, 2});
  cluster.Recover(3);
  wave({0, 1, 2, 3});
  const Status agreement = cluster.CheckReplicaAgreement();
  EXPECT_TRUE(agreement.ok()) << agreement.ToString();
}

TEST(ConcurrencyTest, QueueOverflowDropsButClientTimesOut) {
  ClusterOptions options = Options(2);
  options.managing.client_timeout = Seconds(30);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  // 70 concurrent submissions to one coordinator: 1 active + 64 queued,
  // the rest dropped. Every submission still gets exactly one reply
  // (dropped ones as kCoordinatorUnreachable after the client timeout).
  std::vector<std::pair<TxnSpec, SiteId>> batch;
  for (TxnId t = 1; t <= 70; ++t) {
    batch.push_back({MakeTxn(t, {Operation::Write(0, Value(t))}), 0});
  }
  const auto replies = RunConcurrently(cluster, batch);
  uint64_t committed = 0, unreachable = 0;
  for (const TxnResult& reply : replies) {
    if (reply.outcome == TxnOutcome::kCommitted) ++committed;
    if (reply.outcome == TxnOutcome::kCoordinatorUnreachable) ++unreachable;
  }
  EXPECT_EQ(committed, 65u);   // 1 active + 64 queued
  EXPECT_EQ(unreachable, 5u);  // dropped beyond the bound
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

}  // namespace
}  // namespace miniraid

#include "core/managing_site.h"

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = {Operation::Write(0, 1)};
  return txn;
}

TEST(ManagingSiteTest, TalliesOutcomes) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  options.managing.client_timeout = Seconds(2);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  EXPECT_EQ(cluster.RunTxn(MakeTxn(1), 0).outcome, TxnOutcome::kCommitted);
  cluster.Fail(1);
  EXPECT_EQ(cluster.RunTxn(MakeTxn(2), 0).outcome,
            TxnOutcome::kAbortedParticipantFailed);
  EXPECT_EQ(cluster.RunTxn(MakeTxn(3), 1).outcome,
            TxnOutcome::kCoordinatorUnreachable);

  const ManagingSite& managing = cluster.managing();
  EXPECT_EQ(managing.submitted(), 3u);
  EXPECT_EQ(managing.committed(), 1u);
  EXPECT_EQ(managing.aborted(), 1u);
  EXPECT_EQ(managing.unreachable(), 1u);
}

TEST(ManagingSiteTest, TimeoutSynthesizesUnreachableReply) {
  ClusterOptions options;
  options.n_sites = 2;
  options.managing.client_timeout = Milliseconds(500);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(0);
  const TxnResult reply = cluster.RunTxn(MakeTxn(1), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(reply.txn, 1u);
  EXPECT_FALSE(cluster.managing().HasPending());
}

TEST(ManagingSiteTest, LateReplyAfterTimeoutIgnored) {
  // Client timeout shorter than the transaction: the synthetic unreachable
  // fires first, and the real (late) reply must not double-count.
  ClusterOptions options;
  options.n_sites = 4;
  options.managing.client_timeout = Milliseconds(20);  // < 2PC round trips
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  const TxnResult reply = cluster.RunTxn(MakeTxn(1), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCoordinatorUnreachable);
  // The transaction itself still committed at the sites.
  EXPECT_EQ(cluster.site(0).db().Read(0)->value, 1);
  EXPECT_EQ(cluster.managing().submitted(), 1u);
  EXPECT_EQ(cluster.managing().committed(), 0u);
  EXPECT_EQ(cluster.managing().unreachable(), 1u);
}

TEST(ManagingSiteTest, CallbackInvokedExactlyOnce) {
  ClusterOptions options;
  options.n_sites = 2;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  int calls = 0;
  cluster.managing().Submit(MakeTxn(1), 0,
                            [&calls](const TxnResult&) { ++calls; });
  cluster.RunUntilIdle();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace miniraid

// Stress of the pipelined submission path on the real (threaded) runtime:
// many transactions in flight at once, failure and recovery injected while
// the load is running, and submissions racing from several client threads.
// Run under tsan (the `tsan` CMake preset) this is the data-race gate for
// the async Cluster API.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

std::unique_ptr<Cluster> MakeInProc(uint32_t n_sites, uint32_t db_size,
                                    uint32_t window,
                                    ConcurrencyOptions concurrency = {}) {
  ClusterOptions options;
  options.backend = ClusterBackend::kInProc;
  options.n_sites = n_sites;
  options.db_size = db_size;
  options.max_inflight = window;
  options.site.ack_timeout = Milliseconds(200);
  options.site.concurrency = concurrency;
  options.managing.client_timeout = Seconds(10);
  auto cluster = MakeCluster(options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return std::move(*cluster);
}

TEST(RealClusterStressTest, PipelinedLoadSurvivesFailureAndRecovery) {
  auto cluster = MakeInProc(4, 24, /*window=*/8);
  UniformWorkloadOptions wopts;
  wopts.db_size = 24;
  wopts.max_txn_size = 5;
  wopts.seed = 5;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 8;
  dopts.measure_txns = 400;
  // Coordinators stay on sites 0-2; site 3 (the victim) participates in
  // every write, so its crash exercises detection, ROWAA and fail-lock
  // maintenance without stalling submissions on a dead coordinator.
  dopts.coordinator_for = [](uint64_t index) {
    return static_cast<SiteId>(index % 3);
  };

  std::thread chaos([&cluster] {
    // miniraid-lint: allow(blocking-call) -- test thread paces the injection
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cluster->Fail(3);
    // miniraid-lint: allow(blocking-call)
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cluster->Recover(3);
  });
  const DriverReport report =
      Driver(cluster.get(), &workload, dopts).Run();
  chaos.join();

  EXPECT_TRUE(report.completed) << report.Summary();
  EXPECT_EQ(report.submitted, 400u);
  EXPECT_EQ(report.committed + report.aborted + report.unreachable, 400u);
  // The bulk of the load must get through; detection aborts only a few.
  EXPECT_GE(report.committed, 300u);

  // Quiesce, then the replicas must agree and all counters reconcile.
  ASSERT_TRUE(cluster->WaitUntil(
      3, [](const Site& site) { return site.is_up(); }));
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.submitted, 400u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_LE(stats.max_inflight_seen, 8u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok())
      << cluster->CheckReplicaAgreement().ToString();
}

TEST(RealClusterStressTest, LockedLoadSurvivesFailureAndRecovery) {
  // The same chaos run with the 2PL layer on and a wide executor pool:
  // coordinations pile up inside each site while the victim fails and
  // recovers, so lock hand-off, wait-die aborts, and commit-time
  // fail-lock maintenance all race the control transactions. Under tsan
  // this is the data-race gate for the concurrent execution path.
  ConcurrencyOptions concurrency;
  concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
  concurrency.max_executors = 8;
  concurrency.deadlock_policy = DeadlockPolicy::kWaitDie;
  // A wider database than the serial run above: wait-die losers are not
  // resubmitted by the driver, so the item space keeps the conflict (and
  // hence forced-abort) rate low enough that the bulk still commits.
  auto cluster = MakeInProc(4, 96, /*window=*/8, concurrency);
  UniformWorkloadOptions wopts;
  wopts.db_size = 96;
  wopts.max_txn_size = 5;
  wopts.seed = 7;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 8;
  dopts.measure_txns = 400;
  dopts.coordinator_for = [](uint64_t index) {
    return static_cast<SiteId>(index % 3);
  };

  std::thread chaos([&cluster] {
    // miniraid-lint: allow(blocking-call) -- test thread paces the injection
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cluster->Fail(3);
    // miniraid-lint: allow(blocking-call)
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cluster->Recover(3);
  });
  const DriverReport report =
      Driver(cluster.get(), &workload, dopts).Run();
  chaos.join();

  EXPECT_TRUE(report.completed) << report.Summary();
  EXPECT_EQ(report.submitted, 400u);
  EXPECT_EQ(report.committed + report.aborted + report.unreachable, 400u);
  // The abort count here is timing-dependent (wait-die losers plus the
  // detection window), so the floor has real headroom; the load-bearing
  // assertions are completion, reconciliation, and replica agreement.
  EXPECT_GE(report.committed, 250u);

  ASSERT_TRUE(cluster->WaitUntil(
      3, [](const Site& site) { return site.is_up(); }));
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok())
      << cluster->CheckReplicaAgreement().ToString();
}

TEST(RealClusterStressTest, HandlesRaceFromManyClientThreads) {
  auto cluster = MakeInProc(3, 16, /*window=*/12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<uint64_t> committed{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&cluster, &committed, t] {
      UniformWorkloadOptions wopts;
      wopts.db_size = 16;
      wopts.max_txn_size = 4;
      wopts.seed = 100 + uint64_t(t);
      UniformWorkload workload(wopts);
      std::vector<TxnHandle> handles;
      for (int i = 0; i < kPerThread; ++i) {
        TxnSpec txn = workload.Next();
        // Each workload instance numbers from 1; keep ids globally unique
        // across the client threads.
        txn.id += TxnId(t + 1) * 1000000;
        handles.push_back(
            cluster->SubmitTxn(txn, static_cast<SiteId>((t + i) % 3)));
      }
      for (TxnHandle& handle : handles) {
        if (handle.Get().outcome == TxnOutcome::kCommitted) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(committed.load(), uint64_t(kThreads) * kPerThread);
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.submitted, uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_LE(stats.max_inflight_seen, 12u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

}  // namespace
}  // namespace miniraid

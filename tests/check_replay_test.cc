// Replays every trace checked in under tests/traces/ byte for byte.
//
// Two kinds of fixture live there:
//   golden_*.json       pin the simulator's determinism: a fixed pseudo-
//                       random schedule recorded once; any behaviour change
//                       in the engine shows up as a fanout/pick mismatch.
//   regression_*.json   counterexample traces for issues the checker found;
//                       they must keep replaying exactly AND stay free of
//                       violations under the documented oracle.
//
// MINIRAID_TRACE_DIR is injected by the build (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/systematic.h"
#include "check/trace_io.h"

namespace miniraid::check {
namespace {

std::string TracePath(const std::string& name) {
  return std::string(MINIRAID_TRACE_DIR) + "/" + name;
}

std::vector<std::string> AllTraces() {
  return {
      "golden_smoke.json",
      "golden_recovery_skew.json",
      "golden_recovery_window.json",
      "golden_double_failure.json",
      "golden_interleaved_2pl.json",
      "regression_commit_crash_agreement.json",
      "regression_double_failure_agreement.json",
      "regression_recovery_inflight_coverage.json",
  };
}

TEST(CheckReplayTest, EveryCheckedInTraceReplaysExactly) {
  for (const std::string& name : AllTraces()) {
    SCOPED_TRACE(name);
    Result<CheckTrace> trace = ReadTraceFile(TracePath(name));
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    ReplayOutcome out = ReplayTrace(*trace);
    EXPECT_TRUE(out.matched) << out.mismatch;
    EXPECT_TRUE(out.violations.empty())
        << "invariant violation on replay: " << out.violations.front();
    EXPECT_GT(out.steps, 0u);
  }
}

TEST(CheckReplayTest, ReplayIsDeterministic) {
  Result<CheckTrace> trace = ReadTraceFile(TracePath("golden_smoke.json"));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ReplayOutcome a = ReplayTrace(*trace);
  ReplayOutcome b = ReplayTrace(*trace);
  EXPECT_TRUE(a.matched);
  EXPECT_TRUE(b.matched);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.choice_points, b.choice_points);
}

TEST(CheckReplayTest, RegressionTracesDocumentTheirFinding) {
  // The regression fixtures were recorded as counterexamples against the
  // all-invariants oracle; the note must say what they demonstrated so a
  // reader of the JSON does not need the git history.
  struct Case {
    std::string name;
    std::string finding;
  };
  for (const Case& c :
       {Case{"regression_commit_crash_agreement.json", "FailLockAgreement"},
        Case{"regression_double_failure_agreement.json", "FailLockAgreement"},
        Case{"regression_recovery_inflight_coverage.json", "WriteCoverage"}}) {
    SCOPED_TRACE(c.name);
    Result<CheckTrace> trace = ReadTraceFile(TracePath(c.name));
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    EXPECT_NE(trace->note.find(c.finding), std::string::npos) << trace->note;
  }
}

TEST(CheckReplayTest, MissingTraceIsAnError) {
  Result<CheckTrace> trace = ReadTraceFile(TracePath("no_such_trace.json"));
  EXPECT_FALSE(trace.ok());
}

}  // namespace
}  // namespace miniraid::check

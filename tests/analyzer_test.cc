// Unit and regression tests for the miniraid-analyze semantic core.
//
// These drive the built-in indexer + checks over inline sources, pinning the
// exact behaviours the fixture selftest cannot express file-by-file:
// receiver-type resolution through aliases and accessor chains, the lambda
// asymmetry between the confinement and blocking passes, and the defects
// found while bringing the analyzer up (decode-sequence file attribution,
// no implicit base->override context inheritance).

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"

namespace miniraid {
namespace analyze {
namespace {

Model BuildModel(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Indexer indexer;
  for (const auto& [path, content] : sources) {
    indexer.AddFile(LexFile(path, content));
  }
  return indexer.Build();
}

std::vector<Finding> Analyze(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Model model = BuildModel(sources);
  std::vector<Finding> findings = RunChecks(model, CheckOptions::Defaults());
  ApplySuppressions(model, &findings);
  return findings;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule,
              bool include_suppressed = false) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && (include_suppressed || !f.suppressed)) ++n;
  }
  return n;
}

// Annotation macro preamble shared by the context-rule sources. The
// analyzer keys off the MR_RUNS_ON(ctx) spelling itself.
constexpr char kPreamble[] = R"(
#define MR_RUNS_ON(ctx)
)";

// ---------------------------------------------------------------------------
// Receiver-type resolution (ownership rules).
// ---------------------------------------------------------------------------

TEST(OwnershipTest, ResolvesReceiverThroughTypeAlias) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
using LockTable = FailLockTable;
void Tamper(LockTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

TEST(OwnershipTest, ResolvesReceiverThroughAccessorChain) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class SessionVector {
 public:
  void MarkDown(int site);
};
class Site {
 public:
  SessionVector& sessions();
};
void Tamper(Site& site) { site.sessions().MarkDown(3); }
)"}});
  EXPECT_EQ(CountRule(findings, "session-mutation"), 1);
}

TEST(OwnershipTest, ResolvesReceiverThroughDerivedClass) {
  // Regression: the base-clause parser returned the access specifier as the
  // "type" of `: public FailLockTable` and dropped it, so DerivesFrom never
  // saw any inheritance edge and subclass receivers escaped the rule.
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
class InstrumentedTable : public FailLockTable {
 public:
  int writes = 0;
};
void Tamper(InstrumentedTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

TEST(OwnershipTest, SameNamedMethodOnUnrelatedTypeIsClean) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class Bitmap {
 public:
  void Set(int bit, bool value);
};
void Flip(Bitmap& b) { b.Set(7, true); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
}

TEST(OwnershipTest, MutationInHomeFileIsAllowed) {
  auto findings = Analyze({{"src/core/site.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Engine(FailLockTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
}

// ---------------------------------------------------------------------------
// Context confinement and the lambda asymmetry.
// ---------------------------------------------------------------------------

TEST(ConfinementTest, FlagsTransitiveCrossContextCall) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Crash();
};
void Helper(Site& s) { s.Crash(); }
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Site& s) { Helper(s); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 1);
}

TEST(ConfinementTest, LambdaBodyIsMarshalledNotInherited) {
  // Posting a lambda is the sanctioned way to hop contexts: the confinement
  // pass must not walk into the lambda body from the enclosing function.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Crash();
};
class Loop {
 public:
  template <typename F>
  MR_RUNS_ON(any) void Post(F fn);
};
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Loop& loop, Site& site) {
    loop.Post([&site] { site.Crash(); });
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 0);
}

TEST(BlockingTest, LambdaBodyIsFollowedForBlockingCalls) {
  // The opposite asymmetry: a timer callback runs on the loop, so a sleep
  // inside a lambda handed to the runtime IS reachable from the loop entry.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Runtime {
 public:
  template <typename F>
  MR_RUNS_ON(any) void ScheduleAfter(int ms, F fn);
};
class Site {
 public:
  MR_RUNS_ON(loop) void Arm(Runtime& rt) {
    rt.ScheduleAfter(5, [] { sleep_for(10); });
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 1);
}

TEST(BlockingTest, ClientContextMayBlock) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Driver {
 public:
  MR_RUNS_ON(client) void Poll() { sleep_for(1); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 0);
}

TEST(BlockingTest, AnnotatedCalleeReanchorsTraversal) {
  // An annotated callee is its own verification root: traversal must stop
  // at the contract boundary, so the sleep inside the any-context helper is
  // reported exactly once (from the helper's own root), not re-reported
  // from every caller that reaches it.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Rt {
 public:
  MR_RUNS_ON(any) void Nap() { sleep_for(1); }
};
class Site {
 public:
  MR_RUNS_ON(loop) void Tick(Rt& rt) { rt.Nap(); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 1);
}

// ---------------------------------------------------------------------------
// Regression: no implicit base->override context inheritance.
// ---------------------------------------------------------------------------

TEST(ConfinementTest, OverridesDoNotInheritBaseContext) {
  // SimCluster regression: the simulator collapses every context onto one
  // thread, so its overrides are deliberately unannotated. Propagating the
  // base method's client context into the override produced false
  // cross-context findings against the simulator internals.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Step();
};
class Cluster {
 public:
  MR_RUNS_ON(client) virtual void Drive() = 0;
};
class SimCluster : public Cluster {
 public:
  void Drive() override { site_.Step(); }
 private:
  Site site_;
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 0);
}

TEST(ConfinementTest, UnannotatedVirtualFansOutToOverrides) {
  // But when the BASE method is unannotated, a call through it must still
  // fan out to derived overrides so annotated implementations are checked.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Step();
};
class Backend {
 public:
  virtual void Run(Site& s) = 0;
};
class RealBackend : public Backend {
 public:
  MR_RUNS_ON(loop) void Run(Site& s) override { s.Step(); }
};
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Backend& b, Site& s) { b.Run(s); }
};
)"}});
  // Driver::Go (client) -> Backend::Run fans out to RealBackend::Run, which
  // is a loop-confined contract: one finding at the fan-out edge.
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 1);
}

// ---------------------------------------------------------------------------
// Coverage.
// ---------------------------------------------------------------------------

TEST(CoverageTest, FlagsUnannotatedPublicMethodOfAnnotatedClass) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class SubmitWindow {
 public:
  MR_RUNS_ON(client) void Submit(int txn);
  void Close();
};
)"}});
  EXPECT_EQ(CountRule(findings, "context-coverage"), 1);
}

TEST(CoverageTest, UnannotatedClassesAndSpecialMembersAreExempt) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Unaware {
 public:
  void Anything();
};
class SubmitWindow {
 public:
  SubmitWindow();
  ~SubmitWindow();
  bool operator==(const SubmitWindow& o) const;
  MR_RUNS_ON(client) void Submit(int txn);
 private:
  void Track(int txn);
};
)"}});
  EXPECT_EQ(CountRule(findings, "context-coverage"), 0);
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowCommentCoversOwnAndNextLine) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Tamper(FailLockTable& t) {
  // miniraid-lint: allow(fail-lock-mutation)
  t.Set(1, 2);
}
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation", true), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "fail-lock-mutation"; });
  ASSERT_NE(it, findings.end());
  EXPECT_TRUE(it->suppressed);
}

TEST(SuppressionTest, AllowForDifferentRuleDoesNotSuppress) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Tamper(FailLockTable& t) {
  // miniraid-lint: allow(blocking-call)
  t.Set(1, 2);
}
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

// ---------------------------------------------------------------------------
// Dispatch exhaustiveness.
// ---------------------------------------------------------------------------

TEST(DispatchTest, DefaultlessDispatchSwitchMustBeExhaustive) {
  auto findings = Analyze({{"src/core/x.cc", R"(
enum class MsgType : unsigned char { kPrepare, kCommit };
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPrepare:
        break;
      case MsgType::kCommit:
        break;
    }
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "msg-dispatch"), 0);
}

TEST(DispatchTest, MissingCaseAndUnhandledEnumeratorBothReport) {
  auto findings = Analyze({{"src/core/x.cc", R"(
enum class MsgType : unsigned char { kPrepare, kCommit };
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPrepare:
        break;
    }
  }
};
)"}});
  // One finding at the switch (missing kCommit) and one at the enum
  // (kCommit handled by no dispatcher anywhere).
  EXPECT_EQ(CountRule(findings, "msg-dispatch"), 2);
}

// ---------------------------------------------------------------------------
// Codec symmetry, incl. the decode-sequence file-attribution regression.
// ---------------------------------------------------------------------------

TEST(CodecTest, CountMismatchReportsAtDecoderCaseInDecoderFile) {
  // Regression: with the encoder and decoder in different files, the
  // finding must carry the decoder's file, not the file that happened to
  // hold the last-indexed function.
  auto findings = Analyze(
      {{"src/net/encode.cc", R"(
enum class MsgType : unsigned char { kPing };
struct PingArgs { unsigned long long seq; unsigned char hop; };
class Encoder {
 public:
  void PutU8(unsigned char v);
  void PutU64(unsigned long long v);
};
struct PayloadEncoder {
  Encoder& enc;
  void operator()(const PingArgs& a) {
    enc.PutU64(a.seq);
    enc.PutU8(a.hop);
  }
};
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPing:
        break;
    }
  }
};
)"},
       {"src/net/decode.cc", R"(
enum class MsgType : unsigned char { kPing };
class Decoder {
 public:
  bool GetU64(unsigned long long* v);
};
bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kPing: {
      unsigned long long seq = 0;
      return dec.GetU64(&seq);
    }
  }
  return false;
}
)"}});
  ASSERT_EQ(CountRule(findings, "codec-symmetry"), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "codec-symmetry"; });
  EXPECT_EQ(it->file, "src/net/decode.cc");
}

TEST(CodecTest, SymmetricCodecIsClean) {
  auto findings = Analyze({{"src/net/codec.cc", R"(
enum class MsgType : unsigned char { kPing };
struct PingArgs { unsigned long long seq; };
class Encoder {
 public:
  void PutU64(unsigned long long v);
};
class Decoder {
 public:
  bool GetU64(unsigned long long* v);
};
struct PayloadEncoder {
  Encoder& enc;
  void operator()(const PingArgs& a) { enc.PutU64(a.seq); }
};
bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kPing: {
      unsigned long long seq = 0;
      return dec.GetU64(&seq);
    }
  }
  return false;
}
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPing:
        break;
    }
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "codec-symmetry"), 0);
}

// ---------------------------------------------------------------------------
// Lock-order pass.
// ---------------------------------------------------------------------------

// Capability macro preamble for the lock-order sources; the indexer keys
// off the MR_* spellings, the expansions are irrelevant.
constexpr char kLockPreamble[] = R"(
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_ACQUIRED_BEFORE(...)
class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};
class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};
)";

std::vector<Finding> AnalyzeWithGraph(
    const std::vector<std::pair<std::string, std::string>>& sources,
    LockGraph* graph) {
  Model model = BuildModel(sources);
  CheckOptions opts = CheckOptions::Defaults();
  std::vector<Finding> findings = RunChecks(model, opts);
  *graph = BuildLockGraph(model, opts, &findings);
  ApplySuppressions(model, &findings);
  return findings;
}

TEST(LockOrderTest, SeededDeclaredCycleIsDetected) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Cyclic {
 private:
  Mutex a_ MR_ACQUIRED_BEFORE(b_);
  Mutex b_ MR_ACQUIRED_BEFORE(a_);
};
)"}}, &graph);
  ASSERT_EQ(CountRule(findings, "lock-order"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "lock-order") {
      EXPECT_NE(f.message.find("cycle"), std::string::npos) << f.message;
    }
  }
}

TEST(LockOrderTest, InterproceduralInversionContradictsDeclaredOrder) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Engine {
 public:
  void Helper() { MutexLock lock(outer_); }
  void Run() {
    MutexLock lock(inner_);
    Helper();
  }
 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};
)"}}, &graph);
  EXPECT_EQ(CountRule(findings, "lock-order"), 1);
  bool observed_inversion = false;
  for (const LockGraph::Edge& e : graph.edges) {
    if (e.kind == "observed" && e.from == "Engine::inner_" &&
        e.to == "Engine::outer_") {
      observed_inversion = true;
      EXPECT_EQ(e.via, "Engine::Helper");
    }
  }
  EXPECT_TRUE(observed_inversion);
}

TEST(LockOrderTest, DeclaredOrderSilencesObservedEdgeButKeepsItInGraph) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Engine {
 public:
  void Nested() {
    MutexLock lock(outer_);
    MutexLock inner_lock(inner_);
  }
 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};
)"}}, &graph);
  EXPECT_EQ(CountRule(findings, "lock-order"), 0);
  int declared = 0, observed = 0;
  for (const LockGraph::Edge& e : graph.edges) {
    if (e.kind == "declared") ++declared;
    if (e.kind == "observed") ++observed;
  }
  EXPECT_EQ(declared, 1);
  EXPECT_EQ(observed, 1);
}

// ---------------------------------------------------------------------------
// Protocol-effect pass.
// ---------------------------------------------------------------------------

constexpr char kDispatchSource[] = R"(
enum class MsgType { kPing, kStop };
struct PingArgs { unsigned from; };
struct PongArgs { unsigned from; };
struct ExtraArgs { unsigned from; };
struct Message { MsgType type; unsigned from; };
class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      case MsgType::kPing:
        SendTo(msg.from, %PAYLOAD%{0});
        break;
      case MsgType::kStop:
        break;
    }
  }
 private:
  void SendTo(unsigned to, %PAYLOAD% args);
};
)";

std::string DispatchSourceSending(const std::string& payload) {
  std::string src = kDispatchSource;
  std::string::size_type pos;
  while ((pos = src.find("%PAYLOAD%")) != std::string::npos) {
    src.replace(pos, 9, payload);
  }
  return src;
}

TEST(ProtocolEffectTest, ComputesHandlerSummariesFromDispatchCases) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  ASSERT_EQ(map.handlers.size(), 2u);
  EXPECT_EQ(map.handlers["kPing"], std::set<std::string>{"send:kPong"});
  EXPECT_TRUE(map.handlers["kStop"].empty());
}

TEST(ProtocolEffectTest, SeededDriftAgainstGoldenIsDetected) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("ExtraArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(map, "kPing: send:kPong\nkStop: -\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "protocol-effect");
  EXPECT_NE(findings[0].message.find("send:kExtra"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("send:kPong"), std::string::npos)
      << findings[0].message;
}

TEST(ProtocolEffectTest, MatchingGoldenAndCommentsProduceNoFindings) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(
      map, "# comment\nkPing: send:kPong  # trailing\n\nkStop: -\n",
      &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ProtocolEffectTest, GoldenHandlerWithoutDispatchCaseReports) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(
      map, "kPing: send:kPong\nkStop: -\nkRetired: send:kPong\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kRetired"), std::string::npos);
  EXPECT_NE(findings[0].message.find("no dispatch case"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared-state pass (guarded-by inference).
// ---------------------------------------------------------------------------

// Context + capability macro preamble for the dataflow sources, with an
// EventLoop whose Post the default options treat as a deferred loop sink.
constexpr char kDataflowPreamble[] = R"(
#define MR_RUNS_ON(ctx)
#define MR_CONTEXT_CONFINED(ctx)
#define MR_GUARDED_BY(x)
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};
class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};
class EventLoop {
 public:
  void Post(Task fn);
  void PostAndWait(Task fn);
};
)";

SharedStateReport AnalyzeShared(
    const std::vector<std::pair<std::string, std::string>>& sources,
    std::vector<Finding>* findings) {
  Model model = BuildModel(sources);
  SharedStateReport report =
      BuildSharedStateReport(model, CheckOptions::Defaults(), findings);
  ApplySuppressions(model, findings);
  return report;
}

const SharedStateReport::Field* FieldVerdict(const SharedStateReport& report,
                                             const std::string& cls,
                                             const std::string& field) {
  for (const SharedStateReport::Field& f : report.fields) {
    if (f.cls == cls && f.field == field) return &f;
  }
  return nullptr;
}

TEST(SharedStateTest, ContextInferenceThroughVirtualsFlagsRace) {
  // Tick() is annotated only on the base; the override inherits the loop
  // contract as its seed. The managing-side writer then makes hits_
  // reachable from two contexts with no common mutex.
  std::vector<Finding> findings;
  auto report =
      AnalyzeShared({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Handler {
 public:
  MR_RUNS_ON(loop) virtual void Tick() {}
};
class Counter : public Handler {
 public:
  void Tick() override { hits_ = hits_ + 1; }
  MR_RUNS_ON(managing) void Reset() { hits_ = 0; }
 private:
  int hits_ = 0;
};
)"}}, &findings);
  EXPECT_EQ(CountRule(findings, "shared-state"), 1);
  const auto* f = FieldVerdict(report, "Counter", "hits_");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->verdict, "race");
  EXPECT_TRUE(f->contexts.count("loop"));
  EXPECT_TRUE(f->contexts.count("managing"));
}

TEST(SharedStateTest, LambdaPostedToLoopRunsOnSinkContext) {
  // The access inside the posted lambda happens on the loop, not on the
  // managing context that created it — two contexts, no guard, race.
  std::vector<Finding> findings;
  auto report =
      AnalyzeShared({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Publisher {
 public:
  MR_RUNS_ON(managing) void Publish() {
    seq_ = seq_ + 1;
    loop_->Post([this] { seq_ = seq_ + 1; });
  }
 private:
  EventLoop* loop_;
  int seq_ = 0;
};
)"}}, &findings);
  EXPECT_EQ(CountRule(findings, "shared-state"), 1);
  const auto* f = FieldVerdict(report, "Publisher", "seq_");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->verdict, "race");
  EXPECT_TRUE(f->contexts.count("loop"));
  EXPECT_TRUE(f->contexts.count("managing"));
}

TEST(SharedStateTest, GuardDisagreementBetweenAnnotationAndLocking) {
  std::vector<Finding> findings;
  auto report =
      AnalyzeShared({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Ledger {
 public:
  MR_RUNS_ON(managing) void Add() {
    MutexLock lock(mu_b_);
    count_ = count_ + 1;
  }
 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int count_ MR_GUARDED_BY(mu_a_) = 0;
};
)"}}, &findings);
  ASSERT_EQ(CountRule(findings, "shared-state"), 1);
  const auto* f = FieldVerdict(report, "Ledger", "count_");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->verdict, "guard-disagreement");
  EXPECT_EQ(f->declared_guard, "Ledger::mu_a_");
  for (const Finding& fd : findings) {
    if (fd.rule == "shared-state") {
      EXPECT_NE(fd.message.find("disagree"), std::string::npos) << fd.message;
    }
  }
}

TEST(SharedStateTest, ContextConfinedWaiverSilencesMultiContextField) {
  std::vector<Finding> findings;
  auto report =
      AnalyzeShared({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Config {
 public:
  MR_RUNS_ON(client) void Load() { revision_ = revision_ + 1; }
  MR_RUNS_ON(loop) int Revision() { return revision_; }
 private:
  int revision_ MR_CONTEXT_CONFINED(client) = 0;
};
)"}}, &findings);
  EXPECT_EQ(CountRule(findings, "shared-state"), 0);
  const auto* f = FieldVerdict(report, "Config", "revision_");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->verdict, "confined");
  EXPECT_EQ(f->waiver, "client");
}

TEST(SharedStateTest, CommonHeldMutexAcrossContextsInfersGuarded) {
  std::vector<Finding> findings;
  auto report =
      AnalyzeShared({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Tally {
 public:
  MR_RUNS_ON(managing) void Bump() {
    MutexLock lock(mu_);
    hits_ = hits_ + 1;
  }
  MR_RUNS_ON(loop) int Snapshot() {
    MutexLock lock(mu_);
    return hits_;
  }
 private:
  Mutex mu_;
  int hits_ = 0;
};
)"}}, &findings);
  EXPECT_EQ(CountRule(findings, "shared-state"), 0);
  const auto* f = FieldVerdict(report, "Tally", "hits_");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->verdict, "guarded");
  EXPECT_TRUE(f->common_guards.count("Tally::mu_"));
}

TEST(SharedStateTest, JsonReportIsDeterministicAcrossRuns) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Counter {
 public:
  MR_RUNS_ON(loop) void Tick() { a_ = a_ + 1; b_ = b_ + 1; }
 private:
  int a_ = 0;
  int b_ = 0;
};
)"}};
  std::vector<Finding> f1, f2;
  std::ostringstream os1, os2;
  WriteSharedStateJson(AnalyzeShared(sources, &f1), os1);
  WriteSharedStateJson(AnalyzeShared(sources, &f2), os2);
  EXPECT_FALSE(os1.str().empty());
  EXPECT_EQ(os1.str(), os2.str());
}

// ---------------------------------------------------------------------------
// View-escape pass (buffer-lifetime analysis).
// ---------------------------------------------------------------------------

std::vector<Finding> AnalyzeViews(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Model model = BuildModel(sources);
  std::vector<Finding> findings;
  CheckViewEscape(model, CheckOptions::Defaults(), &findings);
  ApplySuppressions(model, &findings);
  return findings;
}

TEST(ViewEscapeTest, ViewOfLocalBufferStoredInFieldIsFlagged) {
  auto findings = AnalyzeViews({{"src/core/x.cc", R"(
class Parser {
 public:
  void Parse() {
    std::string frame = Fetch();
    std::string_view view(frame);
    view_ = view;
  }
 private:
  std::string Fetch();
  std::string_view view_;
};
)"}});
  ASSERT_EQ(CountRule(findings, "view-escape"), 1);
  EXPECT_NE(findings[0].message.find("view_"), std::string::npos);
}

TEST(ViewEscapeTest, MemberArenaViewStoredInFieldIsClean) {
  auto findings = AnalyzeViews({{"src/core/x.cc", R"(
class Arena {
 public:
  void Reindex() {
    std::string_view view(buf_);
    view_ = view;
  }
 private:
  std::string buf_;
  std::string_view view_;
};
)"}});
  EXPECT_EQ(CountRule(findings, "view-escape"), 0);
}

TEST(ViewEscapeTest, PointerIntoLocalBufferReturnedIsFlagged) {
  auto findings = AnalyzeViews({{"src/core/x.cc", R"(
class Renderer {
 public:
  const char* Render() {
    std::string scratch = Build();
    return scratch.c_str();
  }
 private:
  std::string Build();
};
)"}});
  ASSERT_EQ(CountRule(findings, "view-escape"), 1);
  EXPECT_NE(findings[0].message.find("scratch"), std::string::npos);
}

TEST(ViewEscapeTest, ByRefCaptureIntoDeferredPostIsFlagged) {
  auto findings =
      AnalyzeViews({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Worker {
 public:
  void Go() {
    int n = 0;
    loop_->Post([&n] { n = 1; });
  }
 private:
  EventLoop* loop_;
};
)"}});
  ASSERT_EQ(CountRule(findings, "view-escape"), 1);
  EXPECT_NE(findings[0].message.find("'n'"), std::string::npos);
}

TEST(ViewEscapeTest, PostAndWaitStackCaptureIsAllowed) {
  // The PR 8 regression pair: PostAndWait completes before the frame
  // returns, so the same capture that is a defect through Post is the
  // intended synchronous-handoff idiom through PostAndWait.
  auto findings =
      AnalyzeViews({{"src/core/x.cc", std::string(kDataflowPreamble) + R"(
class Collector {
 public:
  int Sample() {
    int total = 0;
    loop_->PostAndWait([&total] { total = total + 1; });
    return total;
  }
 private:
  EventLoop* loop_;
};
)"}});
  EXPECT_EQ(CountRule(findings, "view-escape"), 0);
}

TEST(ViewEscapeTest, ViewInsertedIntoMemberContainerIsFlagged) {
  auto findings = AnalyzeViews({{"src/core/x.cc", R"(
class Splitter {
 public:
  void Split() {
    std::string line = Next();
    std::string_view token(line);
    parts_.push_back(token);
  }
 private:
  std::string Next();
  std::vector<std::string_view> parts_;
};
)"}});
  ASSERT_EQ(CountRule(findings, "view-escape"), 1);
  EXPECT_NE(findings[0].message.find("parts_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF output.
// ---------------------------------------------------------------------------

TEST(SarifTest, EmitsUnsuppressedFindingsWithRuleAndLocation) {
  std::vector<Finding> findings;
  Finding a;
  a.rule = "view-escape";
  a.file = "src/core/x.cc";
  a.line = 7;
  a.message = "dangling view";
  findings.push_back(a);
  Finding b;
  b.rule = "shared-state";
  b.file = "src/core/y.cc";
  b.line = 0;  // must clamp to startLine >= 1
  b.message = "race";
  findings.push_back(b);
  Finding c = a;
  c.suppressed = true;  // must be omitted
  c.message = "suppressed defect";
  findings.push_back(c);

  std::ostringstream os;
  WriteSarif(findings, os);
  const std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"miniraid-analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"shared-state\"}"), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"view-escape\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"view-escape\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_EQ(sarif.find("suppressed defect"), std::string::npos);
}

}  // namespace
}  // namespace analyze
}  // namespace miniraid

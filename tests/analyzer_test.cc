// Unit and regression tests for the miniraid-analyze semantic core.
//
// These drive the built-in indexer + checks over inline sources, pinning the
// exact behaviours the fixture selftest cannot express file-by-file:
// receiver-type resolution through aliases and accessor chains, the lambda
// asymmetry between the confinement and blocking passes, and the defects
// found while bringing the analyzer up (decode-sequence file attribution,
// no implicit base->override context inheritance).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"

namespace miniraid {
namespace analyze {
namespace {

Model BuildModel(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Indexer indexer;
  for (const auto& [path, content] : sources) {
    indexer.AddFile(LexFile(path, content));
  }
  return indexer.Build();
}

std::vector<Finding> Analyze(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Model model = BuildModel(sources);
  std::vector<Finding> findings = RunChecks(model, CheckOptions::Defaults());
  ApplySuppressions(model, &findings);
  return findings;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule,
              bool include_suppressed = false) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && (include_suppressed || !f.suppressed)) ++n;
  }
  return n;
}

// Annotation macro preamble shared by the context-rule sources. The
// analyzer keys off the MR_RUNS_ON(ctx) spelling itself.
constexpr char kPreamble[] = R"(
#define MR_RUNS_ON(ctx)
)";

// ---------------------------------------------------------------------------
// Receiver-type resolution (ownership rules).
// ---------------------------------------------------------------------------

TEST(OwnershipTest, ResolvesReceiverThroughTypeAlias) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
using LockTable = FailLockTable;
void Tamper(LockTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

TEST(OwnershipTest, ResolvesReceiverThroughAccessorChain) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class SessionVector {
 public:
  void MarkDown(int site);
};
class Site {
 public:
  SessionVector& sessions();
};
void Tamper(Site& site) { site.sessions().MarkDown(3); }
)"}});
  EXPECT_EQ(CountRule(findings, "session-mutation"), 1);
}

TEST(OwnershipTest, ResolvesReceiverThroughDerivedClass) {
  // Regression: the base-clause parser returned the access specifier as the
  // "type" of `: public FailLockTable` and dropped it, so DerivesFrom never
  // saw any inheritance edge and subclass receivers escaped the rule.
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
class InstrumentedTable : public FailLockTable {
 public:
  int writes = 0;
};
void Tamper(InstrumentedTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

TEST(OwnershipTest, SameNamedMethodOnUnrelatedTypeIsClean) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class Bitmap {
 public:
  void Set(int bit, bool value);
};
void Flip(Bitmap& b) { b.Set(7, true); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
}

TEST(OwnershipTest, MutationInHomeFileIsAllowed) {
  auto findings = Analyze({{"src/core/site.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Engine(FailLockTable& t) { t.Set(1, 2); }
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
}

// ---------------------------------------------------------------------------
// Context confinement and the lambda asymmetry.
// ---------------------------------------------------------------------------

TEST(ConfinementTest, FlagsTransitiveCrossContextCall) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Crash();
};
void Helper(Site& s) { s.Crash(); }
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Site& s) { Helper(s); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 1);
}

TEST(ConfinementTest, LambdaBodyIsMarshalledNotInherited) {
  // Posting a lambda is the sanctioned way to hop contexts: the confinement
  // pass must not walk into the lambda body from the enclosing function.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Crash();
};
class Loop {
 public:
  template <typename F>
  MR_RUNS_ON(any) void Post(F fn);
};
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Loop& loop, Site& site) {
    loop.Post([&site] { site.Crash(); });
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 0);
}

TEST(BlockingTest, LambdaBodyIsFollowedForBlockingCalls) {
  // The opposite asymmetry: a timer callback runs on the loop, so a sleep
  // inside a lambda handed to the runtime IS reachable from the loop entry.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Runtime {
 public:
  template <typename F>
  MR_RUNS_ON(any) void ScheduleAfter(int ms, F fn);
};
class Site {
 public:
  MR_RUNS_ON(loop) void Arm(Runtime& rt) {
    rt.ScheduleAfter(5, [] { sleep_for(10); });
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 1);
}

TEST(BlockingTest, ClientContextMayBlock) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Driver {
 public:
  MR_RUNS_ON(client) void Poll() { sleep_for(1); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 0);
}

TEST(BlockingTest, AnnotatedCalleeReanchorsTraversal) {
  // An annotated callee is its own verification root: traversal must stop
  // at the contract boundary, so the sleep inside the any-context helper is
  // reported exactly once (from the helper's own root), not re-reported
  // from every caller that reaches it.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
void sleep_for(int ms);
class Rt {
 public:
  MR_RUNS_ON(any) void Nap() { sleep_for(1); }
};
class Site {
 public:
  MR_RUNS_ON(loop) void Tick(Rt& rt) { rt.Nap(); }
};
)"}});
  EXPECT_EQ(CountRule(findings, "blocking-call"), 1);
}

// ---------------------------------------------------------------------------
// Regression: no implicit base->override context inheritance.
// ---------------------------------------------------------------------------

TEST(ConfinementTest, OverridesDoNotInheritBaseContext) {
  // SimCluster regression: the simulator collapses every context onto one
  // thread, so its overrides are deliberately unannotated. Propagating the
  // base method's client context into the override produced false
  // cross-context findings against the simulator internals.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Step();
};
class Cluster {
 public:
  MR_RUNS_ON(client) virtual void Drive() = 0;
};
class SimCluster : public Cluster {
 public:
  void Drive() override { site_.Step(); }
 private:
  Site site_;
};
)"}});
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 0);
}

TEST(ConfinementTest, UnannotatedVirtualFansOutToOverrides) {
  // But when the BASE method is unannotated, a call through it must still
  // fan out to derived overrides so annotated implementations are checked.
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Site {
 public:
  MR_RUNS_ON(loop) void Step();
};
class Backend {
 public:
  virtual void Run(Site& s) = 0;
};
class RealBackend : public Backend {
 public:
  MR_RUNS_ON(loop) void Run(Site& s) override { s.Step(); }
};
class Driver {
 public:
  MR_RUNS_ON(client) void Go(Backend& b, Site& s) { b.Run(s); }
};
)"}});
  // Driver::Go (client) -> Backend::Run fans out to RealBackend::Run, which
  // is a loop-confined contract: one finding at the fan-out edge.
  EXPECT_EQ(CountRule(findings, "cross-context-call"), 1);
}

// ---------------------------------------------------------------------------
// Coverage.
// ---------------------------------------------------------------------------

TEST(CoverageTest, FlagsUnannotatedPublicMethodOfAnnotatedClass) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class SubmitWindow {
 public:
  MR_RUNS_ON(client) void Submit(int txn);
  void Close();
};
)"}});
  EXPECT_EQ(CountRule(findings, "context-coverage"), 1);
}

TEST(CoverageTest, UnannotatedClassesAndSpecialMembersAreExempt) {
  auto findings = Analyze({{"src/core/x.cc", std::string(kPreamble) + R"(
class Unaware {
 public:
  void Anything();
};
class SubmitWindow {
 public:
  SubmitWindow();
  ~SubmitWindow();
  bool operator==(const SubmitWindow& o) const;
  MR_RUNS_ON(client) void Submit(int txn);
 private:
  void Track(int txn);
};
)"}});
  EXPECT_EQ(CountRule(findings, "context-coverage"), 0);
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowCommentCoversOwnAndNextLine) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Tamper(FailLockTable& t) {
  // miniraid-lint: allow(fail-lock-mutation)
  t.Set(1, 2);
}
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 0);
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation", true), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "fail-lock-mutation"; });
  ASSERT_NE(it, findings.end());
  EXPECT_TRUE(it->suppressed);
}

TEST(SuppressionTest, AllowForDifferentRuleDoesNotSuppress) {
  auto findings = Analyze({{"src/core/recovery_helper.cc", R"(
class FailLockTable {
 public:
  void Set(int from, int to);
};
void Tamper(FailLockTable& t) {
  // miniraid-lint: allow(blocking-call)
  t.Set(1, 2);
}
)"}});
  EXPECT_EQ(CountRule(findings, "fail-lock-mutation"), 1);
}

// ---------------------------------------------------------------------------
// Dispatch exhaustiveness.
// ---------------------------------------------------------------------------

TEST(DispatchTest, DefaultlessDispatchSwitchMustBeExhaustive) {
  auto findings = Analyze({{"src/core/x.cc", R"(
enum class MsgType : unsigned char { kPrepare, kCommit };
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPrepare:
        break;
      case MsgType::kCommit:
        break;
    }
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "msg-dispatch"), 0);
}

TEST(DispatchTest, MissingCaseAndUnhandledEnumeratorBothReport) {
  auto findings = Analyze({{"src/core/x.cc", R"(
enum class MsgType : unsigned char { kPrepare, kCommit };
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPrepare:
        break;
    }
  }
};
)"}});
  // One finding at the switch (missing kCommit) and one at the enum
  // (kCommit handled by no dispatcher anywhere).
  EXPECT_EQ(CountRule(findings, "msg-dispatch"), 2);
}

// ---------------------------------------------------------------------------
// Codec symmetry, incl. the decode-sequence file-attribution regression.
// ---------------------------------------------------------------------------

TEST(CodecTest, CountMismatchReportsAtDecoderCaseInDecoderFile) {
  // Regression: with the encoder and decoder in different files, the
  // finding must carry the decoder's file, not the file that happened to
  // hold the last-indexed function.
  auto findings = Analyze(
      {{"src/net/encode.cc", R"(
enum class MsgType : unsigned char { kPing };
struct PingArgs { unsigned long long seq; unsigned char hop; };
class Encoder {
 public:
  void PutU8(unsigned char v);
  void PutU64(unsigned long long v);
};
struct PayloadEncoder {
  Encoder& enc;
  void operator()(const PingArgs& a) {
    enc.PutU64(a.seq);
    enc.PutU8(a.hop);
  }
};
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPing:
        break;
    }
  }
};
)"},
       {"src/net/decode.cc", R"(
enum class MsgType : unsigned char { kPing };
class Decoder {
 public:
  bool GetU64(unsigned long long* v);
};
bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kPing: {
      unsigned long long seq = 0;
      return dec.GetU64(&seq);
    }
  }
  return false;
}
)"}});
  ASSERT_EQ(CountRule(findings, "codec-symmetry"), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "codec-symmetry"; });
  EXPECT_EQ(it->file, "src/net/decode.cc");
}

TEST(CodecTest, SymmetricCodecIsClean) {
  auto findings = Analyze({{"src/net/codec.cc", R"(
enum class MsgType : unsigned char { kPing };
struct PingArgs { unsigned long long seq; };
class Encoder {
 public:
  void PutU64(unsigned long long v);
};
class Decoder {
 public:
  bool GetU64(unsigned long long* v);
};
struct PayloadEncoder {
  Encoder& enc;
  void operator()(const PingArgs& a) { enc.PutU64(a.seq); }
};
bool DecodePayload(Decoder& dec, MsgType type) {
  switch (type) {
    case MsgType::kPing: {
      unsigned long long seq = 0;
      return dec.GetU64(&seq);
    }
  }
  return false;
}
class Site {
 public:
  void OnMessage(MsgType t) {
    switch (t) {
      case MsgType::kPing:
        break;
    }
  }
};
)"}});
  EXPECT_EQ(CountRule(findings, "codec-symmetry"), 0);
}

// ---------------------------------------------------------------------------
// Lock-order pass.
// ---------------------------------------------------------------------------

// Capability macro preamble for the lock-order sources; the indexer keys
// off the MR_* spellings, the expansions are irrelevant.
constexpr char kLockPreamble[] = R"(
#define MR_CAPABILITY(x)
#define MR_SCOPED_CAPABILITY
#define MR_ACQUIRE(...)
#define MR_RELEASE(...)
#define MR_ACQUIRED_BEFORE(...)
class MR_CAPABILITY("mutex") Mutex {
 public:
  void Lock() MR_ACQUIRE();
  void Unlock() MR_RELEASE();
};
class MR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MR_ACQUIRE(mu);
  ~MutexLock() MR_RELEASE();
};
)";

std::vector<Finding> AnalyzeWithGraph(
    const std::vector<std::pair<std::string, std::string>>& sources,
    LockGraph* graph) {
  Model model = BuildModel(sources);
  CheckOptions opts = CheckOptions::Defaults();
  std::vector<Finding> findings = RunChecks(model, opts);
  *graph = BuildLockGraph(model, opts, &findings);
  ApplySuppressions(model, &findings);
  return findings;
}

TEST(LockOrderTest, SeededDeclaredCycleIsDetected) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Cyclic {
 private:
  Mutex a_ MR_ACQUIRED_BEFORE(b_);
  Mutex b_ MR_ACQUIRED_BEFORE(a_);
};
)"}}, &graph);
  ASSERT_EQ(CountRule(findings, "lock-order"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "lock-order") {
      EXPECT_NE(f.message.find("cycle"), std::string::npos) << f.message;
    }
  }
}

TEST(LockOrderTest, InterproceduralInversionContradictsDeclaredOrder) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Engine {
 public:
  void Helper() { MutexLock lock(outer_); }
  void Run() {
    MutexLock lock(inner_);
    Helper();
  }
 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};
)"}}, &graph);
  EXPECT_EQ(CountRule(findings, "lock-order"), 1);
  bool observed_inversion = false;
  for (const LockGraph::Edge& e : graph.edges) {
    if (e.kind == "observed" && e.from == "Engine::inner_" &&
        e.to == "Engine::outer_") {
      observed_inversion = true;
      EXPECT_EQ(e.via, "Engine::Helper");
    }
  }
  EXPECT_TRUE(observed_inversion);
}

TEST(LockOrderTest, DeclaredOrderSilencesObservedEdgeButKeepsItInGraph) {
  LockGraph graph;
  auto findings =
      AnalyzeWithGraph({{"src/core/x.cc", std::string(kLockPreamble) + R"(
class Engine {
 public:
  void Nested() {
    MutexLock lock(outer_);
    MutexLock inner_lock(inner_);
  }
 private:
  Mutex outer_ MR_ACQUIRED_BEFORE(inner_);
  Mutex inner_;
};
)"}}, &graph);
  EXPECT_EQ(CountRule(findings, "lock-order"), 0);
  int declared = 0, observed = 0;
  for (const LockGraph::Edge& e : graph.edges) {
    if (e.kind == "declared") ++declared;
    if (e.kind == "observed") ++observed;
  }
  EXPECT_EQ(declared, 1);
  EXPECT_EQ(observed, 1);
}

// ---------------------------------------------------------------------------
// Protocol-effect pass.
// ---------------------------------------------------------------------------

constexpr char kDispatchSource[] = R"(
enum class MsgType { kPing, kStop };
struct PingArgs { unsigned from; };
struct PongArgs { unsigned from; };
struct ExtraArgs { unsigned from; };
struct Message { MsgType type; unsigned from; };
class Site {
 public:
  void OnMessage(const Message& msg) {
    switch (msg.type) {
      case MsgType::kPing:
        SendTo(msg.from, %PAYLOAD%{0});
        break;
      case MsgType::kStop:
        break;
    }
  }
 private:
  void SendTo(unsigned to, %PAYLOAD% args);
};
)";

std::string DispatchSourceSending(const std::string& payload) {
  std::string src = kDispatchSource;
  std::string::size_type pos;
  while ((pos = src.find("%PAYLOAD%")) != std::string::npos) {
    src.replace(pos, 9, payload);
  }
  return src;
}

TEST(ProtocolEffectTest, ComputesHandlerSummariesFromDispatchCases) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  ASSERT_EQ(map.handlers.size(), 2u);
  EXPECT_EQ(map.handlers["kPing"], std::set<std::string>{"send:kPong"});
  EXPECT_TRUE(map.handlers["kStop"].empty());
}

TEST(ProtocolEffectTest, SeededDriftAgainstGoldenIsDetected) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("ExtraArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(map, "kPing: send:kPong\nkStop: -\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "protocol-effect");
  EXPECT_NE(findings[0].message.find("send:kExtra"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("send:kPong"), std::string::npos)
      << findings[0].message;
}

TEST(ProtocolEffectTest, MatchingGoldenAndCommentsProduceNoFindings) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(
      map, "# comment\nkPing: send:kPong  # trailing\n\nkStop: -\n",
      &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ProtocolEffectTest, GoldenHandlerWithoutDispatchCaseReports) {
  Model model = BuildModel({{"src/core/x.cc", DispatchSourceSending("PongArgs")}});
  EffectMap map = BuildEffectMap(model, CheckOptions::Defaults());
  std::vector<Finding> findings;
  DiffEffectsAgainstGolden(
      map, "kPing: send:kPong\nkStop: -\nkRetired: send:kPong\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kRetired"), std::string::npos);
  EXPECT_NE(findings[0].message.find("no dispatch case"), std::string::npos);
}

}  // namespace
}  // namespace analyze
}  // namespace miniraid

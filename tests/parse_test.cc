#include "txn/parse.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(ParseTxnOpsTest, ReadsAndCanonicalWrites) {
  const Result<TxnSpec> txn = ParseTxnOps(7, "r4 w2 r0", 10);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  ASSERT_EQ(txn->ops.size(), 3u);
  EXPECT_EQ(txn->ops[0], Operation::Read(4));
  EXPECT_EQ(txn->ops[1], Operation::Write(2, WriteValueFor(7, 2)));
  EXPECT_EQ(txn->ops[2], Operation::Read(0));
  EXPECT_EQ(txn->id, 7u);
}

TEST(ParseTxnOpsTest, ExplicitWriteValues) {
  const Result<TxnSpec> txn = ParseTxnOps(1, "w3=42 w5=-7", 10);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->ops[0], Operation::Write(3, 42));
  EXPECT_EQ(txn->ops[1], Operation::Write(5, -7));
}

TEST(ParseTxnOpsTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseTxnOps(1, "", 10).ok());              // empty
  EXPECT_FALSE(ParseTxnOps(1, "x3", 10).ok());            // bad kind
  EXPECT_FALSE(ParseTxnOps(1, "r", 10).ok());             // no item
  EXPECT_FALSE(ParseTxnOps(1, "rfoo", 10).ok());          // non-numeric
  EXPECT_FALSE(ParseTxnOps(1, "r12", 10).ok());           // out of range
  EXPECT_FALSE(ParseTxnOps(1, "r-1", 10).ok());           // negative
  EXPECT_FALSE(ParseTxnOps(1, "r3=5", 10).ok());          // read with value
  EXPECT_FALSE(ParseTxnOps(1, "w3=abc", 10).ok());        // bad value
  EXPECT_FALSE(ParseTxnOps(1, "r3 w999", 10).ok());       // one bad op
  EXPECT_FALSE(ParseTxnOps(1, "w3=", 10).ok());           // empty value
}

TEST(ParseTxnOpsTest, RoundTripsThroughFormat) {
  const Result<TxnSpec> txn = ParseTxnOps(3, "r1 w2=20 r0 w4=-4", 10);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(FormatTxnOps(*txn), "r1 w2=20 r0 w4=-4");
  const Result<TxnSpec> again = ParseTxnOps(3, FormatTxnOps(*txn), 10);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ops, txn->ops);
}

TEST(ParseTxnOpsTest, WhitespaceTolerant) {
  const Result<TxnSpec> txn = ParseTxnOps(1, "   r1\t w2   ", 10);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->ops.size(), 2u);
}

}  // namespace
}  // namespace miniraid

// Tests for the abstract protocol model checker (check/abstract_model.h):
// the exhaustive bound is clean, each known-bug toggle still trips the
// property it historically violated, and exploration is deterministic.

#include "check/abstract_model.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace miniraid::check {
namespace {

AbstractConfig BaseConfig() {
  AbstractConfig cfg;
  cfg.n_sites = 3;
  cfg.n_items = 2;
  cfg.max_depth = 64;  // beyond closure: exploration exhausts at depth 17
  return cfg;
}

TEST(AbstractModelTest, FullClosureAtThreeSitesTwoItemsIsClean) {
  AbstractResult r = ExploreAbstract(BaseConfig());
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->detail << "\n" << r.violation->state;
  // Within the action budgets (3 commits / 2 crashes / 2 refreshes) the
  // state space closes: nothing was cut off by the depth bound.
  EXPECT_FALSE(r.depth_bounded);
  EXPECT_FALSE(r.state_bounded);
  // Closure statistics are a regression pin: a change to the transition
  // relation or the properties must consciously update them (and the
  // matching numbers in docs/ANALYSIS.md).
  EXPECT_EQ(r.states_visited, 9542u);
  EXPECT_EQ(r.max_depth_reached, 17u);
}

TEST(AbstractModelTest, InterleavedCommitsClosureIsClean) {
  // With every commit split into prepare/apply halves, recovery traffic
  // interleaves with transactions past their prepare — the window the
  // intra-site 2PL layer widens in the real engine. Coverage, owner
  // consistency, session consistency and per-edge monotonicity must
  // still close clean (prospective fail-lock maintenance in the info
  // replies is what makes this pass; see the test below).
  AbstractConfig cfg = BaseConfig();
  cfg.interleaved_commits = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->detail << "\n" << r.violation->state;
  EXPECT_FALSE(r.depth_bounded);
  EXPECT_FALSE(r.state_bounded);
  // Regression pin, like the serial closure above.
  EXPECT_EQ(r.states_visited, 37384u);
  EXPECT_EQ(r.max_depth_reached, 20u);
}

TEST(AbstractModelTest, BatchedCommitsClosureIsClean) {
  // Group commit: prepared slots sharing a coordinator and participant set
  // may also drain through one atomic kEndBatchCommit (batched apply +
  // coalesced fail-lock maintenance, mirroring the engine's BatchCommit
  // round). The flag only ADDS interleavings over the interleaved closure
  // — every batched apply reaches a state the per-slot kEndCommit sequence
  // also reaches — so the same properties must close clean.
  AbstractConfig cfg = BaseConfig();
  cfg.interleaved_commits = true;
  cfg.batched_commits = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->detail << "\n" << r.violation->state;
  EXPECT_FALSE(r.depth_bounded);
  EXPECT_FALSE(r.state_bounded);
  // Batched draining is a shortcut through states the singleton actions
  // already visit: the canonical state count must match the interleaved
  // closure exactly, while the edge count grows (the new actions).
  AbstractConfig plain = BaseConfig();
  plain.interleaved_commits = true;
  AbstractResult base = ExploreAbstract(plain);
  EXPECT_EQ(r.states_visited, base.states_visited);
  EXPECT_GT(r.transitions, base.transitions);
}

TEST(AbstractModelTest, BatchedCommitsRequireASharedParticipantSet) {
  // Two prepared slots at the same coordinator enable exactly one
  // kEndBatchCommit group action, and applying it drains both slots with
  // identical fail-lock rows (the coalesced maintenance writes the
  // complement of the shared mask everywhere).
  AbstractConfig cfg = BaseConfig();
  cfg.interleaved_commits = true;
  cfg.batched_commits = true;
  ModelState s = InitialState(cfg);
  s = ApplyAction(cfg, s, {AbstractAction::Kind::kBeginCommit, 0, 0, 0});
  s = ApplyAction(cfg, s, {AbstractAction::Kind::kBeginCommit, 0, 0, 1});
  std::vector<AbstractAction> actions = EnabledActions(cfg, s);
  int batch_actions = 0;
  AbstractAction batch{};
  for (const AbstractAction& a : actions) {
    if (a.kind == AbstractAction::Kind::kEndBatchCommit) {
      ++batch_actions;
      batch = a;
    }
  }
  ASSERT_EQ(batch_actions, 1);
  EXPECT_EQ(batch.site, 0);
  EXPECT_EQ(batch.peer, 0x07);  // all three sites up = the full mask
  ModelState done = ApplyAction(cfg, s, batch);
  for (uint8_t x = 0; x < 2; ++x) {
    EXPECT_FALSE(done.pend[x].active);
    EXPECT_EQ(done.latest[x], 1);
    for (uint8_t j = 0; j < 3; ++j) {
      EXPECT_EQ(done.site[j].ver[x], 1);
      EXPECT_EQ(done.site[j].locks[x], 0);  // nobody outside the mask
    }
  }
  EXPECT_FALSE(CheckState(cfg, done).has_value());
}

TEST(AbstractModelTest, AgreementHoldsAtClosureWithFixedSemantics) {
  AbstractConfig cfg = BaseConfig();
  cfg.check_lock_agreement = true;
  AbstractResult r = ExploreAbstract(cfg);
  EXPECT_FALSE(r.violation.has_value())
      << r.violation->detail << "\n" << r.violation->state;
}

TEST(AbstractModelTest, ExplorationIsDeterministic) {
  AbstractResult a = ExploreAbstract(BaseConfig());
  AbstractResult b = ExploreAbstract(BaseConfig());
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(AbstractModelTest, SymmetryReductionPreservesTheVerdict) {
  AbstractConfig sym = BaseConfig();
  AbstractConfig raw = BaseConfig();
  raw.canonicalize = false;
  // Bound the raw run's depth: without folding the space is much larger.
  sym.max_depth = raw.max_depth = 10;
  AbstractResult with_sym = ExploreAbstract(sym);
  AbstractResult without = ExploreAbstract(raw);
  EXPECT_FALSE(with_sym.violation.has_value());
  EXPECT_FALSE(without.violation.has_value());
  // Folding can only shrink the canonical state count.
  EXPECT_LE(with_sym.states_visited, without.states_visited);
  EXPECT_GT(with_sym.symmetry_hits, 0u);
}

// Each toggle reproduces a defect this checker found in the real engine
// (docs/ANALYSIS.md "Model checking"); the checker must keep catching it.

TEST(AbstractModelTest, DroppedRecoveryWindowUpdatesAreCaught) {
  AbstractConfig cfg = BaseConfig();
  cfg.drop_recovery_window_updates = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->property, AbstractProperty::kLockOwnerConsistency)
      << r.violation->detail;
}

TEST(AbstractModelTest, PreFixCommitSemanticsViolateReadSafety) {
  AbstractConfig cfg = BaseConfig();
  cfg.skip_prepare_view_merge = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->property, AbstractProperty::kFreshCopyCoverage)
      << r.violation->detail;
  // The historical counterexample was 7 actions deep; BFS returns a
  // shortest path, so the depth must not grow.
  EXPECT_LE(r.violation->path.size(), 7u);
}

TEST(AbstractModelTest, PreFixCommitSemanticsRefuteLockAgreement) {
  AbstractConfig cfg = BaseConfig();
  cfg.skip_prepare_view_merge = true;
  cfg.check_lock_agreement = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_TRUE(r.violation.has_value());
  // Agreement is the shallower symptom of the same defect, so it fires
  // first (historically at 6 actions).
  EXPECT_EQ(r.violation->property, AbstractProperty::kLockAgreement)
      << r.violation->detail;
  EXPECT_LE(r.violation->path.size(), 6u);
}

TEST(AbstractModelTest, SkippedProspectiveFailLocksAreCaught) {
  // Pre-fix recovery info replies serve only the responder's current
  // table. A commit prepared before the announce and applied after the
  // snapshot then maintains bits no info reply carried, and the recovered
  // site's table is immediately wrong — the defect the systematic layer
  // found in the real engine (regression_recovery_inflight_coverage) and
  // Site::RecoveryInfoRows fixes.
  AbstractConfig cfg = BaseConfig();
  cfg.interleaved_commits = true;
  cfg.skip_prospective_faillocks = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->property, AbstractProperty::kLockOwnerConsistency)
      << r.violation->detail;
  // BFS shortest counterexample: 8 actions (crash, detect, begin-commit,
  // begin-recovery, reply, end-commit, crash, end-recovery).
  EXPECT_LE(r.violation->path.size(), 8u);
}

TEST(AbstractModelTest, NarrowClearBroadcastLeavesAStaleLockBehind) {
  AbstractConfig cfg = BaseConfig();
  cfg.narrow_clear_broadcast = true;
  AbstractResult r = ExploreAbstract(cfg);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->property, AbstractProperty::kLockOwnerConsistency)
      << r.violation->detail;
  EXPECT_LE(r.violation->path.size(), 12u);
}

TEST(AbstractModelTest, ActionsRoundTripThroughApply) {
  AbstractConfig cfg = BaseConfig();
  ModelState s = InitialState(cfg);
  std::vector<AbstractAction> actions = EnabledActions(cfg, s);
  ASSERT_FALSE(actions.empty());
  // From the all-up initial state the enabled set is commits and crashes
  // only (nothing to detect, recover, or refresh).
  for (const AbstractAction& a : actions) {
    EXPECT_TRUE(a.kind == AbstractAction::Kind::kCommit ||
                a.kind == AbstractAction::Kind::kCrash)
        << a.ToString();
    ModelState next = ApplyAction(cfg, s, a);
    EXPECT_FALSE(CheckState(cfg, next).has_value())
        << "one step from the initial state violated a property: "
        << a.ToString();
  }
}

TEST(AbstractModelTest, StateBoundReportsInsteadOfFailing) {
  AbstractConfig cfg = BaseConfig();
  cfg.max_states = 100;
  AbstractResult r = ExploreAbstract(cfg);
  EXPECT_TRUE(r.state_bounded);
  EXPECT_FALSE(r.violation.has_value());
}

// ---------------------------------------------------------------------------
// Action/effect vocabulary (the bridge to miniraid-analyze's effect golden).
// ---------------------------------------------------------------------------

TEST(ActionVocabularyTest, CoversAllKindsInOrderWithUniqueNames) {
  const auto& vocab = AbstractActionVocabulary();
  ASSERT_EQ(vocab.size(), 10u);
  std::set<std::string> names;
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(vocab[i].kind), i);
    EXPECT_TRUE(names.insert(std::string(vocab[i].name)).second)
        << vocab[i].name;
  }
}

#ifdef MINIRAID_EFFECTS_GOLDEN
// Every handler and effect token the checked-in analyzer golden approves
// must be owned by at least one abstract action: a golden entry with no
// owner means src/replication grew a protocol step the model does not
// explore, and the two must be reconciled together.
TEST(ActionVocabularyTest, EffectGoldenStaysInsideTheVocabulary) {
  std::ifstream in(MINIRAID_EFFECTS_GOLDEN);
  ASSERT_TRUE(in) << "cannot read " << MINIRAID_EFFECTS_GOLDEN;

  std::set<std::string> known_handlers, known_effects;
  for (const ActionEffectVocabulary& v : AbstractActionVocabulary()) {
    for (std::string_view h : v.handlers) known_handlers.emplace(h);
    for (std::string_view e : v.effects) known_effects.emplace(e);
  }

  // Pure acks and client-side replies carry no effects, so no abstract
  // action claims them; they are still legitimate golden entries.
  const std::set<std::string> pure_wire_steps = {
      "kChannelAck", "kClearFailLocksAck", "kCopyCreateAck", "kFailureAck",
      "kShutdown", "kTxnReply"};

  std::string line;
  int handlers_seen = 0;
  while (std::getline(in, line)) {
    std::string::size_type hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::string::size_type colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string handler = line.substr(0, colon);
    handler.erase(0, handler.find_first_not_of(" \t"));
    handler.erase(handler.find_last_not_of(" \t") + 1);
    if (handler.empty()) continue;
    ++handlers_seen;
    EXPECT_TRUE(known_handlers.count(handler) ||
                pure_wire_steps.count(handler))
        << "golden handler " << handler << " has no owning abstract action";
    std::istringstream rest(line.substr(colon + 1));
    std::string tok;
    while (rest >> tok) {
      if (tok == "-") continue;
      EXPECT_TRUE(known_effects.count(tok))
          << "golden effect " << tok << " (handler " << handler
          << ") is outside the abstract action vocabulary";
    }
  }
  // The golden covers the whole MsgType alphabet; an empty parse would
  // make the containment checks above pass vacuously.
  EXPECT_GE(handlers_seen, 20);
}
#endif  // MINIRAID_EFFECTS_GOLDEN

}  // namespace
}  // namespace miniraid::check

#include "core/coordinator_policy.h"

#include <gtest/gtest.h>

#include <map>

namespace miniraid {
namespace {

TEST(CoordinatorPolicyTest, FixedPrefersItsSite) {
  CoordinatorPolicy policy = CoordinatorPolicy::Fixed(2);
  Rng rng(1);
  EXPECT_EQ(policy.Pick({0, 1, 2, 3}, &rng), 2u);
  // Falls back to the first up site when the fixed one is down.
  EXPECT_EQ(policy.Pick({0, 1, 3}, &rng), 0u);
}

TEST(CoordinatorPolicyTest, RoundRobinCycles) {
  CoordinatorPolicy policy = CoordinatorPolicy::RoundRobin();
  Rng rng(1);
  const std::vector<SiteId> up = {0, 1, 2};
  EXPECT_EQ(policy.Pick(up, &rng), 0u);
  EXPECT_EQ(policy.Pick(up, &rng), 1u);
  EXPECT_EQ(policy.Pick(up, &rng), 2u);
  EXPECT_EQ(policy.Pick(up, &rng), 0u);
}

TEST(CoordinatorPolicyTest, UniformCoversAllSites) {
  CoordinatorPolicy policy = CoordinatorPolicy::Uniform();
  Rng rng(5);
  std::map<SiteId, int> histogram;
  for (int i = 0; i < 9000; ++i) {
    ++histogram[policy.Pick({0, 1, 2}, &rng)];
  }
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_NEAR(histogram[s], 3000, 300) << "site " << s;
  }
}

TEST(CoordinatorPolicyTest, WeightedMatchesWeights) {
  CoordinatorPolicy policy = CoordinatorPolicy::Weighted({0.1, 1.0});
  Rng rng(5);
  std::map<SiteId, int> histogram;
  constexpr int kDraws = 22000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[policy.Pick({0, 1}, &rng)];
  }
  EXPECT_NEAR(double(histogram[0]) / kDraws, 0.1 / 1.1, 0.01);
}

TEST(CoordinatorPolicyTest, WeightedDefaultsMissingEntriesToOne) {
  CoordinatorPolicy policy = CoordinatorPolicy::Weighted({0.0});
  Rng rng(5);
  // Site 0 has weight 0; sites 1 and 2 default to 1.
  std::map<SiteId, int> histogram;
  for (int i = 0; i < 2000; ++i) {
    ++histogram[policy.Pick({0, 1, 2}, &rng)];
  }
  EXPECT_EQ(histogram[0], 0);
  EXPECT_GT(histogram[1], 0);
  EXPECT_GT(histogram[2], 0);
}

TEST(CoordinatorPolicyTest, Names) {
  EXPECT_EQ(CoordinatorPolicy::Fixed(3).name(), "fixed(3)");
  EXPECT_EQ(CoordinatorPolicy::RoundRobin().name(), "round-robin");
  EXPECT_EQ(CoordinatorPolicy::Uniform().name(), "uniform");
  EXPECT_EQ(CoordinatorPolicy::Weighted({1}).name(), "weighted");
}

}  // namespace
}  // namespace miniraid

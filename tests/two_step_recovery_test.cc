// Tests of the paper's §3.2 two-step recovery proposal: below the
// threshold, a recovering site issues copier transactions in batch mode
// instead of waiting for reads to demand them.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/experiments.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

ClusterOptions Options(double threshold, uint32_t chunk) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 20;
  options.site.batch_copier_threshold = threshold;
  options.site.batch_copier_chunk = chunk;
  return options;
}

/// Fails site 1, makes `n` of its copies stale, recovers it, and returns
/// the cluster for inspection.
std::unique_ptr<SimCluster> StaleRecovery(const ClusterOptions& options,
                                          uint32_t n_stale) {
  auto cluster = MakeSimCluster(options);
  cluster->Fail(1);
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0);  // detect
  TxnId txn = 2;
  for (uint32_t item = 0; item < n_stale; ++item) {
    (void)cluster->RunTxn(
        MakeTxn(txn, {Operation::Write(item, Value(100 + item))}), 0);
    ++txn;
  }
  cluster->Recover(1);
  return cluster;
}

TEST(TwoStepRecoveryTest, ThresholdOneRefreshesEverythingImmediately) {
  auto cluster = StaleRecovery(Options(1.0, 5), 12);
  // Recover() ran to quiescence: batch copiers fired in waves of 5 until
  // nothing was stale — zero transactions needed.
  EXPECT_EQ(cluster->site(1).OwnFailLockCount(), 0u);
  EXPECT_GE(cluster->site(1).counters().batch_copier_transactions, 3u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
  // The refreshed values are the real ones.
  EXPECT_EQ(cluster->site(1).db().Read(3)->value, 103);
  // And the operational site's table was cleared by the special txns.
  EXPECT_EQ(cluster->site(0).fail_locks().CountForSite(1), 0u);
}

TEST(TwoStepRecoveryTest, AboveThresholdStaysOnDemand) {
  // 12 of 20 stale = 60% > 30% threshold: step one (on-demand) only.
  auto cluster = StaleRecovery(Options(0.3, 5), 12);
  EXPECT_EQ(cluster->site(1).counters().batch_copier_transactions, 0u);
  EXPECT_EQ(cluster->site(1).OwnFailLockCount(), 12u);
}

TEST(TwoStepRecoveryTest, CrossingThresholdEntersBatchMode) {
  // 12 stale (60%); threshold 50%. Writes clear a few; once the fraction
  // dips to <= 50% the recovering site finishes the rest itself.
  auto cluster = StaleRecovery(Options(0.5, 4), 12);
  ASSERT_EQ(cluster->site(1).OwnFailLockCount(), 12u);
  TxnId txn = 100;
  // Each write to a stale item clears one lock; after two (10/20 = 50%),
  // batch mode kicks in at the next idle point and drains the rest.
  (void)cluster->RunTxn(MakeTxn(txn++, {Operation::Write(0, 1)}), 0);
  EXPECT_EQ(cluster->site(1).OwnFailLockCount(), 11u);  // still step one
  (void)cluster->RunTxn(MakeTxn(txn++, {Operation::Write(1, 2)}), 0);
  EXPECT_EQ(cluster->site(1).OwnFailLockCount(), 0u);  // step two drained
  EXPECT_GE(cluster->site(1).counters().batch_copier_transactions, 3u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST(TwoStepRecoveryTest, BatchAbandonedWhenNoSourceAvailable) {
  // The batch copier must not spin forever if the only fresh copies are on
  // a site that just failed.
  ClusterOptions options = Options(1.0, 5);
  options.n_sites = 3;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(2);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(5, 55)}), 0);
  // Both 0 and 1 are fresh. Fail them BOTH... then site 2 cannot recover
  // its stale copies; but our scenario needs an up site for announcements.
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(6, 66)}), 0);  // detect 1
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(5, 56)}), 0);
  // Now item 5 and 6 are fresh only at site 0. Fail site 0 after site 2
  // recovers? Simpler: recover site 2 while only site 0 is fresh, then
  // fail site 0 mid-batch is hard to time; instead verify the abandoned
  // path with a drop filter in a dedicated cluster below.
  cluster.Recover(2);
  // Batch copiers ran against site 0 successfully.
  EXPECT_EQ(cluster.site(2).OwnFailLockCount(), 0u);
}

TEST(TwoStepRecoveryTest, BatchSurvivesSilentCopySource) {
  // Drop every CopyReply from site 0 so batch copier requests time out:
  // the site must give up (and retry later) rather than hang or crash.
  ClusterOptions options = Options(1.0, 5);
  options.transport.drop_filter = [](const Message& msg) {
    return msg.type == MsgType::kCopyReply && msg.from == 0;
  };
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 2)}), 0);
  cluster.Recover(1);
  cluster.RunUntilIdle();
  // Locks remain (the copies never arrived) but the system is quiescent
  // and the copies can still be refreshed by writes.
  EXPECT_GE(cluster.site(1).OwnFailLockCount(), 1u);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(0, 3)}), 0);
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(1, 4)}), 0);
  EXPECT_EQ(cluster.site(1).OwnFailLockCount(), 0u);
}

}  // namespace
}  // namespace miniraid

#include "replication/lock_manager.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

using Mode = LockManager::Mode;
using Outcome = LockManager::Outcome;

ConcurrencyOptions TwoPhase(DeadlockPolicy policy = DeadlockPolicy::kWaitDie) {
  ConcurrencyOptions options;
  options.mode = ConcurrencyMode::kTwoPhaseLocking;
  options.deadlock_policy = policy;
  return options;
}

TEST(LockManagerTest, GrantsFreeLocks) {
  LockManager lm(TwoPhase());
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  EXPECT_TRUE(lm.Holds(1, 10));
  EXPECT_EQ(lm.TotalHeld(), 1u);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm(TwoPhase());
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.HolderCount(1), 2u);
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm(TwoPhase());
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.HolderCount(1), 1u);
}

TEST(LockManagerTest, SoleSharedHolderUpgrades) {
  LockManager lm(TwoPhase());
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  // Now exclusive: another shared request from an older txn queues.
  bool granted = false;
  EXPECT_EQ(lm.Acquire(1, 5, Mode::kShared, [&granted] { granted = true; }),
            Outcome::kQueued);
  lm.ReleaseAll(10);
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, QueuedUpgradeGrantsWhenSoleHolderRemains) {
  // txn 5 holds shared alongside txn 10 and queues an upgrade; when 10
  // releases, 5 is the sole remaining holder and the upgrade must grant
  // (a naive grant loop would stall: holders is non-empty).
  LockManager lm(TwoPhase(DeadlockPolicy::kTimeout));
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kShared, nullptr), Outcome::kGranted);
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  bool upgraded = false;
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kExclusive, [&upgraded] { upgraded = true; }),
            Outcome::kQueued);
  lm.ReleaseAll(10);
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm.Holds(1, 5));
  EXPECT_EQ(lm.HolderCount(1), 1u);
}

TEST(LockManagerTest, WaitDieOlderWaitsYoungerDies) {
  LockManager lm(TwoPhase());
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  // Younger (larger id) conflicting requester dies immediately.
  EXPECT_EQ(lm.Acquire(1, 20, Mode::kExclusive, nullptr), Outcome::kRejected);
  EXPECT_EQ(lm.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kRejected);
  // Older (smaller id) requester waits.
  bool granted = false;
  EXPECT_EQ(lm.Acquire(1, 5, Mode::kExclusive, [&granted] { granted = true; }),
            Outcome::kQueued);
  EXPECT_FALSE(granted);
  lm.ReleaseAll(10);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(1, 5));
}

TEST(LockManagerTest, FifoGrantOfQueuedWaiters) {
  LockManager lm(TwoPhase());
  ASSERT_EQ(lm.Acquire(1, 30, Mode::kExclusive, nullptr), Outcome::kGranted);
  std::vector<int> order;
  ASSERT_EQ(
      lm.Acquire(1, 10, Mode::kExclusive, [&order] { order.push_back(10); }),
      Outcome::kQueued);
  ASSERT_EQ(
      lm.Acquire(1, 20, Mode::kExclusive, [&order] { order.push_back(20); }),
      Outcome::kQueued);
  lm.ReleaseAll(30);
  // Only the first waiter gets the exclusive lock.
  EXPECT_EQ(order, (std::vector<int>{10}));
  lm.ReleaseAll(10);
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

TEST(LockManagerTest, SharedWaitersGrantTogether) {
  LockManager lm(TwoPhase());
  ASSERT_EQ(lm.Acquire(1, 30, Mode::kExclusive, nullptr), Outcome::kGranted);
  int granted = 0;
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kShared, [&granted] { ++granted; }),
            Outcome::kQueued);
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kShared, [&granted] { ++granted; }),
            Outcome::kQueued);
  lm.ReleaseAll(30);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(lm.HolderCount(1), 2u);
}

TEST(LockManagerTest, QueuedSharedBlocksLaterSharedBehindWriter) {
  // No writer starvation: once an exclusive waiter queues, later shared
  // requests conflict (they must queue or die).
  LockManager lm(TwoPhase());
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  bool writer_granted = false;
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kExclusive,
                       [&writer_granted] { writer_granted = true; }),
            Outcome::kQueued);
  // Younger shared requester dies rather than jumping the writer.
  EXPECT_EQ(lm.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kRejected);
  lm.ReleaseAll(10);
  EXPECT_TRUE(writer_granted);
}

TEST(LockManagerTest, ReleaseCancelsQueuedRequests) {
  LockManager lm(TwoPhase());
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  bool granted = false;
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kExclusive, [&granted] { granted = true; }),
            Outcome::kQueued);
  lm.ReleaseAll(5);  // the waiter gives up (abort path)
  lm.ReleaseAll(10);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.TotalHeld(), 0u);
}

TEST(LockManagerTest, ReleaseAllCoversManyItems) {
  LockManager lm(TwoPhase());
  for (ItemId item = 0; item < 5; ++item) {
    ASSERT_EQ(lm.Acquire(item, 7, Mode::kExclusive, nullptr),
              Outcome::kGranted);
  }
  EXPECT_EQ(lm.TotalHeld(), 5u);
  lm.ReleaseAll(7);
  EXPECT_EQ(lm.TotalHeld(), 0u);
}

TEST(LockManagerTest, CancelWaitsKeepsHeldLocksAndUnblocksFollowers) {
  LockManager lm(TwoPhase(DeadlockPolicy::kTimeout));
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 5, Mode::kExclusive, nullptr), Outcome::kGranted);
  // txn 5 queues an exclusive on item 1; txn 20's shared dams up behind it.
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kExclusive, [] {}), Outcome::kQueued);
  bool late_shared = false;
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kShared,
                       [&late_shared] { late_shared = true; }),
            Outcome::kQueued);
  lm.CancelWaits(5);
  // Dropping the exclusive waiter lets the compatible shared run through,
  // while txn 5's granted lock on item 2 stays held.
  EXPECT_TRUE(late_shared);
  EXPECT_TRUE(lm.Holds(2, 5));
  EXPECT_EQ(lm.QueueLength(1), 0u);
}

TEST(LockManagerTest, WoundWaitWoundsYoungerHolderDeferred) {
  LockManager lm(TwoPhase(DeadlockPolicy::kWoundWait));
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kExclusive, nullptr), Outcome::kGranted);
  bool granted = false;
  // Older requester wounds the younger holder but gets no synchronous
  // callback — the wound is reported via TakePendingWounds.
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, [&granted] { granted = true; }),
            Outcome::kQueued);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.TakePendingWounds(), (std::vector<TxnId>{20}));
  // Duplicate wounds are suppressed until the victim releases.
  EXPECT_TRUE(lm.TakePendingWounds().empty());
  lm.ReleaseAll(20);  // the site aborts the victim
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(1, 10));
}

TEST(LockManagerTest, WoundWaitYoungerRequesterWaits) {
  LockManager lm(TwoPhase(DeadlockPolicy::kWoundWait));
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  bool granted = false;
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kExclusive, [&granted] { granted = true; }),
            Outcome::kQueued);
  EXPECT_TRUE(lm.TakePendingWounds().empty());  // no wound: holder is older
  lm.ReleaseAll(10);
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, WoundWaitGrantsOldestFirst) {
  // Wound-wait's deadlock-freedom argument needs every wait edge to point
  // young -> old, so the grant order must be by age, not arrival.
  LockManager lm(TwoPhase(DeadlockPolicy::kWoundWait));
  ASSERT_EQ(lm.Acquire(1, 5, Mode::kExclusive, nullptr), Outcome::kGranted);
  std::vector<int> order;
  ASSERT_EQ(
      lm.Acquire(1, 30, Mode::kExclusive, [&order] { order.push_back(30); }),
      Outcome::kQueued);
  ASSERT_EQ(
      lm.Acquire(1, 10, Mode::kExclusive, [&order] { order.push_back(10); }),
      Outcome::kQueued);
  lm.ReleaseAll(5);
  EXPECT_EQ(order, (std::vector<int>{10}));  // older 10 beats earlier 30
  lm.ReleaseAll(10);
  EXPECT_EQ(order, (std::vector<int>{10, 30}));
}

TEST(LockManagerTest, PinnedHolderIsNeverWounded) {
  LockManager lm(TwoPhase(DeadlockPolicy::kWoundWait));
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kExclusive, nullptr), Outcome::kGranted);
  lm.Pin(20);  // past the point of no return
  bool granted = false;
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, [&granted] { granted = true; }),
            Outcome::kQueued);
  // The elder waits instead of wounding the pinned younger holder.
  EXPECT_TRUE(lm.TakePendingWounds().empty());
  lm.ReleaseAll(20);  // commit finishes; pin is forgotten with the release
  EXPECT_TRUE(granted);
  EXPECT_FALSE(lm.IsPinned(20));
}

TEST(LockManagerTest, TimeoutPolicyAlwaysQueues) {
  LockManager lm(TwoPhase(DeadlockPolicy::kTimeout));
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  // Even a younger conflicting requester queues (no wait-die rejection);
  // the site's lock-wait timer is responsible for breaking cycles.
  EXPECT_EQ(lm.Acquire(1, 20, Mode::kExclusive, [] {}), Outcome::kQueued);
  EXPECT_EQ(lm.QueueLength(1), 1u);
  EXPECT_TRUE(lm.TakePendingWounds().empty());
}

// kTimeout races a waiter's lock-wait timer against the holder's site
// failure: the crash path releases the holder's locks (granting the
// waiter), while the timer path cancels the waiter's queued requests. The
// two fire in either order and each must leave a consistent table.

TEST(LockManagerTest, TimeoutCrashReleaseBeforeTimerKeepsGrantedLock) {
  // Holder 10 "crashes": the site aborts it with ReleaseAll, which grants
  // waiter 20. The waiter's lock-wait timer then fires late — its
  // CancelWaits must be a no-op on the now-HELD lock, not a revocation.
  LockManager lm(TwoPhase(DeadlockPolicy::kTimeout));
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  int grants = 0;
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kExclusive, [&grants] { ++grants; }),
            Outcome::kQueued);

  lm.ReleaseAll(10);  // crash path: holder's site failed
  EXPECT_EQ(grants, 1);
  ASSERT_TRUE(lm.Holds(1, 20));

  lm.CancelWaits(20);  // stale timer fires after the grant
  EXPECT_TRUE(lm.Holds(1, 20));
  EXPECT_EQ(lm.HolderCount(1), 1u);
  EXPECT_EQ(grants, 1);  // no double grant
}

TEST(LockManagerTest, TimeoutTimerBeforeCrashReleaseNeverGrantsWaiter) {
  // The waiter's timer wins the race: CancelWaits(20) dequeues it before
  // the holder's crash releases the lock. The subsequent ReleaseAll(10)
  // must NOT grant 20 — its site already aborted it with
  // kAbortedLockTimeout, and a late grant callback would resurrect a dead
  // transaction.
  LockManager lm(TwoPhase(DeadlockPolicy::kTimeout));
  ASSERT_EQ(lm.Acquire(1, 10, Mode::kExclusive, nullptr), Outcome::kGranted);
  int grants = 0;
  ASSERT_EQ(lm.Acquire(1, 20, Mode::kExclusive, [&grants] { ++grants; }),
            Outcome::kQueued);
  // A third transaction waits behind 20; the cancel must unblock it, not
  // merely drop 20.
  int grants_30 = 0;
  ASSERT_EQ(lm.Acquire(1, 30, Mode::kExclusive, [&grants_30] { ++grants_30; }),
            Outcome::kQueued);

  lm.CancelWaits(20);  // timeout path: waiter aborts
  lm.ReleaseAll(20);   // its site's abort then releases (holds nothing)
  EXPECT_EQ(grants, 0);
  EXPECT_EQ(lm.QueueLength(1), 1u);  // 30 still waits; 20 is gone

  lm.ReleaseAll(10);  // crash path arrives second
  EXPECT_EQ(grants, 0);  // 20 must stay dead
  EXPECT_EQ(grants_30, 1);
  EXPECT_TRUE(lm.Holds(1, 30));
  EXPECT_FALSE(lm.Holds(1, 20));
}

}  // namespace
}  // namespace miniraid

// Unit tests of the ReliableChannel over the simulator transport: loss is
// repaired by retransmission, duplicates are suppressed, reordering is
// hidden behind the per-pair FIFO contract, and a permanently silent peer
// bounds the retransmission effort (abandon after max_retransmits).

#include "net/reliable_channel.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "net/sim_transport.h"
#include "sim/sim_runtime.h"

namespace miniraid {
namespace {

/// Records every delivered CommitDecision's txn id, in delivery order.
class Recorder : public MessageHandler {
 public:
  void OnMessage(const Message& msg) override {
    if (msg.type == MsgType::kCommit) {
      txns.push_back(msg.As<CommitArgs>().txn);
    }
  }
  std::vector<TxnId> txns;
};

/// Two endpoints (0 and 1) each fronted by a ReliableChannel over one
/// shared SimTransport.
struct Pair {
  Pair(SimRuntime* sim, const SimTransportOptions& topts,
       const ReliableChannelOptions& copts)
      : transport(sim, topts),
        ch0(0, &transport, sim->RuntimeFor(0), &rec0, copts),
        ch1(1, &transport, sim->RuntimeFor(1), &rec1, copts) {
    transport.Register(0, &ch0);
    transport.Register(1, &ch1);
  }
  SimTransport transport;
  Recorder rec0, rec1;
  ReliableChannel ch0, ch1;
};

ReliableChannelOptions Enabled() {
  ReliableChannelOptions copts;
  copts.enabled = true;
  return copts;
}

TEST(ReliableChannelTest, RetransmitsEveryLostMessageInOrder) {
  SimRuntime sim;
  SimTransportOptions topts;
  // Drop the FIRST transmission of every data message from site 0; let
  // retransmissions (and everything from site 1) through.
  std::set<uint64_t> seen;
  topts.faults.drop_filter = [&seen](const Message& msg) {
    if (msg.from != 0 || msg.seq == 0) return false;
    return seen.insert(msg.seq).second;
  };
  Pair pair(&sim, topts, Enabled());
  for (TxnId t = 1; t <= 10; ++t) {
    ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(pair.rec1.txns.size(), 10u);
  for (TxnId t = 1; t <= 10; ++t) {
    EXPECT_EQ(pair.rec1.txns[t - 1], t);
  }
  EXPECT_EQ(pair.ch0.counters().retransmits, 10u);
  EXPECT_EQ(pair.ch0.counters().abandoned, 0u);
  EXPECT_EQ(pair.ch0.counters().acked, 10u);
  EXPECT_EQ(pair.ch1.counters().delivered, 10u);
}

TEST(ReliableChannelTest, TransportDuplicatesSuppressedAtReceiver) {
  SimRuntime sim;
  SimTransportOptions topts;
  topts.faults.duplicate_probability = 1.0;  // every message arrives twice
  Pair pair(&sim, topts, Enabled());
  for (TxnId t = 1; t <= 20; ++t) {
    ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(pair.rec1.txns.size(), 20u);
  for (TxnId t = 1; t <= 20; ++t) {
    EXPECT_EQ(pair.rec1.txns[t - 1], t);
  }
  EXPECT_EQ(pair.ch1.counters().dup_suppressed, 20u);
  EXPECT_EQ(pair.ch1.counters().delivered, 20u);
  EXPECT_EQ(pair.ch0.counters().retransmits, 0u);
}

TEST(ReliableChannelTest, GapIsBufferedAndReleasedInSequence) {
  SimRuntime sim;
  SimTransportOptions topts;
  // Lose only seq 1 (once): seqs 2..5 arrive first and must wait for the
  // retransmission to fill the gap, then deliver strictly in order.
  bool dropped = false;
  topts.faults.drop_filter = [&dropped](const Message& msg) {
    if (msg.from == 0 && msg.seq == 1 && !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  Pair pair(&sim, topts, Enabled());
  for (TxnId t = 1; t <= 5; ++t) {
    ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(pair.rec1.txns.size(), 5u);
  for (TxnId t = 1; t <= 5; ++t) {
    EXPECT_EQ(pair.rec1.txns[t - 1], t) << "FIFO broken across a gap";
  }
  EXPECT_EQ(pair.ch1.counters().out_of_order_buffered, 4u);
  // Acks are cumulative (no selective acks): buffered 2..5 stay unacked
  // until the gap fills, so the sender may retransmit them too — at least
  // the lost message goes again, at most one round for all five.
  EXPECT_GE(pair.ch0.counters().retransmits, 1u);
  EXPECT_LE(pair.ch0.counters().retransmits, 5u);
}

TEST(ReliableChannelTest, AbandonsAfterMaxRetransmits) {
  SimRuntime sim;
  SimTransportOptions topts;
  // A black hole towards site 1: every data message from 0 is dropped.
  topts.faults.drop_filter = [](const Message& msg) {
    return msg.from == 0 && msg.seq > 0;
  };
  ReliableChannelOptions copts = Enabled();
  copts.max_retransmits = 3;
  Pair pair(&sim, topts, copts);
  ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{1})).ok());
  sim.RunUntilIdle();  // terminates: the channel gives up, timers stop
  EXPECT_TRUE(pair.rec1.txns.empty());
  EXPECT_EQ(pair.ch0.counters().retransmits, 3u);
  EXPECT_EQ(pair.ch0.counters().abandoned, 1u);
  EXPECT_EQ(pair.ch0.counters().acked, 0u);
}

TEST(ReliableChannelTest, DisabledChannelIsAPassthrough) {
  SimRuntime sim;
  Pair pair(&sim, SimTransportOptions{}, ReliableChannelOptions{});
  ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{7})).ok());
  sim.RunUntilIdle();
  ASSERT_EQ(pair.rec1.txns.size(), 1u);
  EXPECT_EQ(pair.rec1.txns[0], 7u);
  // No channel machinery engaged: no seq stamped, nothing counted.
  EXPECT_EQ(pair.ch0.counters().data_sent, 0u);
  EXPECT_EQ(pair.ch1.counters().delivered, 0u);
  EXPECT_EQ(pair.transport.messages_sent(), 1u);  // no acks either
}

TEST(ReliableChannelTest, UnsequencedDatagramBypassesDedup) {
  // A message from a sender with no channel (seq = 0) must still reach the
  // upper handler — mixed deployments and control probes rely on it.
  SimRuntime sim;
  SimTransportOptions topts;
  SimTransport transport(&sim, topts);
  Recorder rec1;
  ReliableChannel ch1(1, &transport, sim.RuntimeFor(1), &rec1, Enabled());
  transport.Register(1, &ch1);
  ASSERT_TRUE(transport.Send(MakeMessage(9, 1, CommitArgs{42})).ok());
  sim.RunUntilIdle();
  ASSERT_EQ(rec1.txns.size(), 1u);
  EXPECT_EQ(rec1.txns[0], 42u);
  EXPECT_EQ(ch1.counters().delivered, 0u);  // not a sequenced delivery
}

TEST(ReliableChannelTest, BidirectionalTrafficPiggybacksAcks) {
  SimRuntime sim;
  Pair pair(&sim, SimTransportOptions{}, Enabled());
  for (TxnId t = 1; t <= 5; ++t) {
    ASSERT_TRUE(pair.ch0.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
    ASSERT_TRUE(pair.ch1.Send(MakeMessage(1, 0, CommitArgs{100 + t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(pair.rec1.txns.size(), 5u);
  ASSERT_EQ(pair.rec0.txns.size(), 5u);
  EXPECT_EQ(pair.ch0.counters().acked, 5u);
  EXPECT_EQ(pair.ch1.counters().acked, 5u);
  EXPECT_EQ(pair.ch0.counters().retransmits, 0u);
  EXPECT_EQ(pair.ch1.counters().retransmits, 0u);
}

}  // namespace
}  // namespace miniraid

#include <gtest/gtest.h>

#include "baselines/baseline_cluster.h"
#include "txn/transaction.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

BaselineClusterOptions Options(BaselineKind kind, uint32_t n_sites) {
  BaselineClusterOptions options;
  options.kind = kind;
  options.n_sites = n_sites;
  options.db_size = 8;
  options.managing.client_timeout = Seconds(8);
  return options;
}

TEST(RowaStrictTest, CommitsAndReplicatesWhenAllUp) {
  BaselineCluster cluster(Options(BaselineKind::kRowaStrict, 3));
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site_counters(1).commits_handled, 1u);
  EXPECT_EQ(cluster.site_counters(2).commits_handled, 1u);
}

TEST(RowaStrictTest, AnyFailureBlocksAllUpdates) {
  BaselineCluster cluster(Options(BaselineKind::kRowaStrict, 3));
  cluster.Fail(2);
  for (TxnId t = 1; t <= 3; ++t) {
    const TxnResult reply =
        cluster.RunTxn(MakeTxn(t, {Operation::Write(1, 10)}), 0);
    EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed)
        << "txn " << t;
  }
}

TEST(RowaStrictTest, ReadOnlyTransactionsSurviveFailures) {
  BaselineCluster cluster(Options(BaselineKind::kRowaStrict, 3));
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(1, 10)}), 0);
  cluster.Fail(2);
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(2, {Operation::Read(1)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 10);
}

TEST(RowaStrictTest, RecoveryCopiesWholeDatabase) {
  BaselineCluster cluster(Options(BaselineKind::kRowaStrict, 2));
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(3, 33)}), 0);
  cluster.Fail(1);
  // Updates blocked while down (the first aborts and detects nothing new —
  // strict ROWA has no session vectors; every update keeps trying).
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 34)}), 0);
  cluster.Recover(1);
  // After recovery the copy matches (it re-copied the whole database).
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(3)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 33);  // txn 2 aborted; 33 is current
  EXPECT_EQ(cluster.UpSites().size(), 2u);
}

TEST(QuorumTest, CommitsWithMinorityDown) {
  BaselineCluster cluster(Options(BaselineKind::kQuorum, 3));
  cluster.Fail(2);
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(4, 44)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
}

TEST(QuorumTest, BlocksWithMajorityDown) {
  BaselineCluster cluster(Options(BaselineKind::kQuorum, 3));
  cluster.Fail(1);
  cluster.Fail(2);
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Read(0)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed);
}

TEST(QuorumTest, ReadQuorumMasksStaleRecoveredCopy) {
  BaselineCluster cluster(Options(BaselineKind::kQuorum, 3));
  cluster.Fail(2);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(4, 44)}), 0);
  cluster.Recover(2);  // no refresh: site 2's copy of 4 is stale (version 0)
  // A read coordinated at the stale site still returns the fresh value:
  // the read quorum includes a fresh copy, and the max version wins.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(2, {Operation::Read(4)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 44);
  EXPECT_EQ(reply.reads.at(0).version, 1u);
}

TEST(QuorumTest, WritesAdvanceVersionsMonotonically) {
  BaselineCluster cluster(Options(BaselineKind::kQuorum, 3));
  for (TxnId t = 1; t <= 5; ++t) {
    ASSERT_EQ(cluster.RunTxn(MakeTxn(t, {Operation::Write(0, Value(t))}),
                             static_cast<SiteId>(t % 3))
                  .outcome,
              TxnOutcome::kCommitted);
  }
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(6, {Operation::Read(0)}), 1);
  EXPECT_EQ(reply.reads.at(0).value, 5);
  EXPECT_EQ(reply.reads.at(0).version, 5u);
}

TEST(QuorumTest, SingleSiteClusterTrivialQuorum) {
  BaselineCluster cluster(Options(BaselineKind::kQuorum, 1));
  const TxnResult reply = cluster.RunTxn(
      MakeTxn(1, {Operation::Write(0, 7), Operation::Read(0)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
}

}  // namespace
}  // namespace miniraid

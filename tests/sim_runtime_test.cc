#include "sim/sim_runtime.h"

#include <gtest/gtest.h>

#include <vector>

namespace miniraid {
namespace {

TEST(SimRuntimeTest, EventsRunAtTheirTimes) {
  SimRuntime sim;
  std::vector<TimePoint> observed;
  sim.ScheduleGlobalEvent(Milliseconds(5),
                          [&] { observed.push_back(sim.now()); });
  sim.ScheduleGlobalEvent(Milliseconds(2),
                          [&] { observed.push_back(sim.now()); });
  sim.RunUntilIdle();
  EXPECT_EQ(observed,
            (std::vector<TimePoint>{Milliseconds(2), Milliseconds(5)}));
}

TEST(SimRuntimeTest, ChargeAdvancesSiteLocalTime) {
  SimRuntime sim;
  SiteRuntime* site = sim.RuntimeFor(0);
  TimePoint before = 0, after = 0;
  sim.ScheduleSiteEvent(Milliseconds(1), 0, [&] {
    before = site->Now();
    site->ChargeCpu(Milliseconds(10));
    after = site->Now();
  });
  sim.RunUntilIdle();
  EXPECT_EQ(before, Milliseconds(1));
  EXPECT_EQ(after, Milliseconds(11));
}

TEST(SimRuntimeTest, BusySiteDefersNextEvent) {
  SimRuntime sim({/*shared_cpu=*/false});
  SiteRuntime* site = sim.RuntimeFor(0);
  TimePoint second_start = 0;
  sim.ScheduleSiteEvent(Milliseconds(1), 0,
                        [&] { site->ChargeCpu(Milliseconds(10)); });
  sim.ScheduleSiteEvent(Milliseconds(2), 0,
                        [&] { second_start = site->Now(); });
  sim.RunUntilIdle();
  // The second event was due at 2 ms but the site's CPU was busy until 11.
  EXPECT_EQ(second_start, Milliseconds(11));
}

TEST(SimRuntimeTest, PerSiteCpusRunInParallel) {
  SimRuntime sim({/*shared_cpu=*/false});
  TimePoint site1_start = 0;
  sim.ScheduleSiteEvent(Milliseconds(1), 0, [&] {
    sim.RuntimeFor(0)->ChargeCpu(Milliseconds(50));
  });
  sim.ScheduleSiteEvent(Milliseconds(2), 1,
                        [&] { site1_start = sim.RuntimeFor(1)->Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(site1_start, Milliseconds(2));  // unaffected by site 0's work
}

TEST(SimRuntimeTest, SharedCpuSerializesSites) {
  SimRuntime sim({/*shared_cpu=*/true});
  TimePoint site1_start = 0;
  sim.ScheduleSiteEvent(Milliseconds(1), 0, [&] {
    sim.RuntimeFor(0)->ChargeCpu(Milliseconds(50));
  });
  sim.ScheduleSiteEvent(Milliseconds(2), 1,
                        [&] { site1_start = sim.RuntimeFor(1)->Now(); });
  sim.RunUntilIdle();
  // One processor (the paper's testbed): site 1 waits for site 0's work.
  EXPECT_EQ(site1_start, Milliseconds(51));
}

TEST(SimRuntimeTest, FifoPreservedThroughBusyDeferral) {
  SimRuntime sim;
  std::vector<int> order;
  sim.ScheduleSiteEvent(Milliseconds(1), 0, [&] {
    sim.RuntimeFor(0)->ChargeCpu(Milliseconds(10));
    order.push_back(0);
  });
  sim.ScheduleSiteEvent(Milliseconds(2), 0, [&] { order.push_back(1); });
  sim.ScheduleSiteEvent(Milliseconds(3), 0, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimRuntimeTest, TimersFireAndCancel) {
  SimRuntime sim;
  SiteRuntime* site = sim.RuntimeFor(3);
  bool fired = false;
  bool cancelled_fired = false;
  sim.ScheduleSiteEvent(0, 3, [&] {
    (void)site->ScheduleAfter(Milliseconds(7), [&] { fired = true; });
    const TimerId id =
        site->ScheduleAfter(Milliseconds(8), [&] { cancelled_fired = true; });
    site->CancelTimer(id);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(cancelled_fired);
}

TEST(SimRuntimeTest, TimerDelayCountsChargedCpu) {
  SimRuntime sim;
  SiteRuntime* site = sim.RuntimeFor(0);
  TimePoint fire_time = 0;
  sim.ScheduleSiteEvent(Milliseconds(1), 0, [&] {
    site->ChargeCpu(Milliseconds(4));
    // Scheduled at local time 5 ms, so it fires at 5 + 10.
    (void)site->ScheduleAfter(Milliseconds(10),
                              [&] { fire_time = site->Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fire_time, Milliseconds(15));
}

TEST(SimRuntimeTest, RunUntilAdvancesClockToDeadline) {
  SimRuntime sim;
  int ran = 0;
  sim.ScheduleGlobalEvent(Milliseconds(5), [&] { ++ran; });
  sim.ScheduleGlobalEvent(Milliseconds(50), [&] { ++ran; });
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), Milliseconds(10));
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

TEST(SimRuntimeTest, DeterministicEventCount) {
  auto run = [] {
    SimRuntime sim;
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleSiteEvent(i * 3 % 17, i % 4, [&sim, i] {
        sim.RuntimeFor(i % 4)->ChargeCpu(i % 5);
      });
    }
    sim.RunUntilIdle();
    return sim.now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace miniraid

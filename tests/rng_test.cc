#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace miniraid {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(99);
  std::map<uint64_t, int> histogram;
  constexpr int kDraws = 60000;
  constexpr uint64_t kBuckets = 6;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.NextBounded(kBuckets)];
  }
  for (uint64_t bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(histogram[bucket], kDraws / kBuckets, kDraws / 50)
        << "bucket " << bucket;
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    trues += rng.NextBool(0.3);
  }
  EXPECT_NEAR(trues, 3000, 200);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(13);
  ZipfGenerator zipf(10, 0.0, &rng);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 50000; ++i) ++histogram[zipf.Next()];
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(histogram[k], 5000, 400) << "item " << k;
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(13);
  ZipfGenerator zipf(50, 0.99, &rng);
  std::map<uint64_t, int> histogram;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 50u);
    ++histogram[v];
  }
  // Rank 0 should dominate, and the head should vastly outdraw the tail.
  EXPECT_GT(histogram[0], histogram[10]);
  EXPECT_GT(histogram[0], 8 * std::max(histogram[49], 1));
  EXPECT_GT(histogram[0] + histogram[1] + histogram[2], kDraws / 5);
}

}  // namespace
}  // namespace miniraid

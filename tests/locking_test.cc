// The concurrency-control extension end to end: with
// ConcurrencyOptions::mode == kTwoPhaseLocking, overlapping transactions are
// strict-2PL ordered — shared locks for the coordinator's local reads,
// exclusive locks at every site for writes, wait-die for deadlock freedom
// (the default policy; deadlock_policy selects wound-wait/timeout). These
// tests pin down the machinery: serial runs are unaffected, conflicting
// younger transactions die cleanly and retry, locks never leak across
// commits, aborts, timeouts, or crashes, and the feature composes with
// failure/recovery.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

ClusterOptions Options(uint32_t n_sites, uint32_t db_size = 12) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  options.site.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
  return options;
}

std::vector<TxnResult> RunConcurrently(
    SimCluster& cluster,
    const std::vector<std::pair<TxnSpec, SiteId>>& batch) {
  std::vector<std::optional<TxnResult>> slots(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    cluster.managing().Submit(
        batch[i].first, batch[i].second,
        [&slots, i](const TxnResult& reply) { slots[i] = reply; });
  }
  cluster.RunUntilIdle();
  std::vector<TxnResult> replies;
  for (auto& slot : slots) {
    EXPECT_TRUE(slot.has_value());
    replies.push_back(slot.value_or(TxnResult{}));
  }
  return replies;
}

TEST(LockingTest, SerialTransactionsUnaffected) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  for (TxnId t = 1; t <= 10; ++t) {
    const TxnResult reply = cluster.RunTxn(
        MakeTxn(t, {Operation::Write(static_cast<ItemId>(t % 12), Value(t)),
                    Operation::Read(0)}),
        static_cast<SiteId>(t % 3));
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted) << "txn " << t;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
  // Strict 2PL: nothing may remain locked at quiescence.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.site(s).counters().txns_aborted_lock_conflict, 0u);
  }
}

TEST(LockingTest, MultiItemReadIsAtomicAgainstConcurrentWrite) {
  // A reader and a conflicting pair-writer run concurrently from different
  // coordinators; the reader must observe both items at the same version.
  // (This invariant also holds lock-free — reads execute atomically in one
  // event and sites apply writes atomically — the test pins down that the
  // locking machinery preserves it while adding its waits/aborts.)
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto cluster_owner = MakeSimCluster(Options(2, 4));
    SimCluster& cluster = *cluster_owner;
    (void)cluster.RunTxn(
        MakeTxn(1, {Operation::Write(0, 100), Operation::Write(1, 100)}), 0);

    const auto replies = RunConcurrently(
        cluster,
        {{MakeTxn(2, {Operation::Read(0), Operation::Read(1)}), 0},
         {MakeTxn(3, {Operation::Write(0, 300), Operation::Write(1, 300)}),
          1}});
    ASSERT_EQ(replies[0].outcome, TxnOutcome::kCommitted);
    // Atomicity: the two reads agree on the version.
    ASSERT_EQ(replies[0].reads.size(), 2u);
    EXPECT_EQ(replies[0].reads[0].version, replies[0].reads[1].version)
        << "torn read: x@" << replies[0].reads[0].version << " y@"
        << replies[0].reads[1].version;
    EXPECT_EQ(replies[0].reads[0].value, replies[0].reads[1].value);
    EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
  }
}

TEST(LockingTest, YoungerConflictingWriterDiesAndCanRetry) {
  auto cluster_owner = MakeSimCluster(Options(2, 4));
  SimCluster& cluster = *cluster_owner;
  // Start an older multi-item writer and a younger conflicting writer
  // concurrently at different coordinators.
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10), Operation::Write(1, 11),
                             Operation::Write(2, 12)}),
                 0},
                {MakeTxn(2, {Operation::Write(1, 21)}), 1}});
  EXPECT_EQ(replies[0].outcome, TxnOutcome::kCommitted);
  // The younger either slipped in cleanly before/after or died; it must
  // never deadlock or corrupt. If it died, a retry commits.
  if (replies[1].outcome != TxnOutcome::kCommitted) {
    EXPECT_EQ(replies[1].outcome, TxnOutcome::kAbortedLockConflict);
    const TxnResult retry =
        cluster.RunTxn(MakeTxn(3, {Operation::Write(1, 21)}), 1);
    EXPECT_EQ(retry.outcome, TxnOutcome::kCommitted);
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(LockingTest, NoLocksLeakAcrossHeavyConcurrency) {
  auto cluster_owner = MakeSimCluster(Options(4, 10));
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 10;
  wopts.max_txn_size = 4;
  wopts.seed = 3;
  UniformWorkload workload(wopts);

  uint64_t committed = 0, lock_aborts = 0;
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::pair<TxnSpec, SiteId>> batch;
    for (int i = 0; i < 6; ++i) {
      batch.push_back({workload.Next(), static_cast<SiteId>(i % 4)});
    }
    for (const TxnResult& reply : RunConcurrently(cluster, batch)) {
      committed += reply.outcome == TxnOutcome::kCommitted;
      lock_aborts += reply.outcome == TxnOutcome::kAbortedLockConflict;
    }
  }
  // Contention produces wait-die aborts — more than the old serial engine,
  // since every site now overlaps up to max_executors coordinations — but
  // the majority commits, replicas agree, and (checked implicitly by
  // continued progress) no lock is ever leaked.
  EXPECT_GT(committed, 60u);
  EXPECT_EQ(committed + lock_aborts, 120u);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
  // Everything quiesced: a fresh serial transaction sails through.
  EXPECT_EQ(cluster.RunTxn(MakeTxn(10000, {Operation::Write(0, 1)}), 0)
                .outcome,
            TxnOutcome::kCommitted);
}

TEST(LockingTest, StaleLocksDoNotOutliveTimeoutsOrCrashes) {
  // Drop the commit to participant 1 so it holds txn 1's exclusive lock on
  // item 2 until its patience timer declares the coordinator dead and
  // releases it. (Both survivors then suspect each other — the protocol's
  // correct response to asymmetric silence.)
  ClusterOptions options = Options(3, 6);
  options.transport.drop_filter = [](const Message& msg) {
    return msg.from == 0 && msg.to == 1 && msg.type == MsgType::kCommit;
  };
  options.managing.client_timeout = Seconds(30);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0).outcome,
            TxnOutcome::kCommitted);
  // Clear the mutual suspicion with a real crash + type-1 recovery.
  cluster.Fail(1);
  cluster.Recover(1);
  // If the timed-out participation had leaked txn 1's lock, this younger
  // writer's prepare at site 1 would die under wait-die. Committing — and
  // replicating to site 1 — proves the lock was released.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 23)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(1).db().Read(2)->value, 23);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

TEST(LockingTest, FailureAndRecoveryComposeWithLocking) {
  auto cluster_owner = MakeSimCluster(Options(3, 8));
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 8;
  wopts.max_txn_size = 4;
  wopts.seed = 9;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  cluster.Fail(2);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 2));
  }
  cluster.Recover(2);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

}  // namespace
}  // namespace miniraid

#include "net/event_loop.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace miniraid {
namespace {

TEST(EventLoopTest, TasksRunInPostOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    loop.Post([&order, i] { order.push_back(i); });
  }
  loop.PostAndWait([] {});
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, TasksRunOnLoopThread) {
  EventLoop loop;
  bool on_loop_thread = false;
  loop.PostAndWait(
      [&] { on_loop_thread = loop.IsCurrentThread(); });
  EXPECT_TRUE(on_loop_thread);
  EXPECT_FALSE(loop.IsCurrentThread());
}

TEST(EventLoopTest, TimerFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  loop.ScheduleAfter(Milliseconds(5), [&] { fired = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  const TimerId id =
      loop.ScheduleAfter(Milliseconds(20), [&] { fired = true; });
  loop.CancelTimer(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::atomic<int> fired{0};
  loop.ScheduleAfter(Milliseconds(30), [&] {
    order.push_back(2);
    ++fired;
  });
  loop.ScheduleAfter(Milliseconds(5), [&] {
    order.push_back(1);
    ++fired;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, CancelFromTimerCallback) {
  EventLoop loop;
  std::atomic<bool> second_fired{false};
  std::atomic<bool> done{false};
  loop.PostAndWait([&] {
    const TimerId second = loop.ScheduleAfter(Milliseconds(50), [&] {
      second_fired = true;
    });
    loop.ScheduleAfter(Milliseconds(5), [&, second] {
      loop.CancelTimer(second);
      done = true;
    });
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(done);
  EXPECT_FALSE(second_fired);
}

TEST(EventLoopTest, StopIsIdempotent) {
  EventLoop loop;
  loop.Post([] {});
  loop.Stop();
  loop.Stop();  // second stop must be harmless
}

TEST(EventLoopTest, PostAfterStopIsDropped) {
  EventLoop loop;
  loop.Stop();
  loop.Post([] { FAIL() << "task ran after Stop"; });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(ThreadSiteRuntimeTest, NowAdvances) {
  EventLoop loop;
  SteadyClock clock;
  ThreadSiteRuntime runtime(&loop, &clock);
  const TimePoint a = runtime.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(runtime.Now(), a);
}

TEST(ThreadSiteRuntimeTest, ChargeCpuSpinsWhenScaled) {
  EventLoop loop;
  SteadyClock clock;
  ThreadSiteRuntime scaled(&loop, &clock, /*cpu_scale=*/1.0);
  const TimePoint start = clock.Now();
  scaled.ChargeCpu(Milliseconds(5));
  EXPECT_GE(clock.Now() - start, Milliseconds(5));

  ThreadSiteRuntime unscaled(&loop, &clock, /*cpu_scale=*/0.0);
  const TimePoint start2 = clock.Now();
  unscaled.ChargeCpu(Seconds(100));  // must return immediately
  EXPECT_LT(clock.Now() - start2, Seconds(1));
}

}  // namespace
}  // namespace miniraid

#include <gtest/gtest.h>

#include <vector>

#include "net/inproc_transport.h"
#include "net/sim_transport.h"

namespace miniraid {
namespace {

class Recorder : public MessageHandler {
 public:
  void OnMessage(const Message& msg) override { messages.push_back(msg); }
  std::vector<Message> messages;
};

TEST(SimTransportTest, DeliversAfterLatency) {
  SimRuntime sim;
  SimTransportOptions options;
  options.message_latency = Milliseconds(9);
  SimTransport transport(&sim, options);
  Recorder recorder;
  transport.Register(1, &recorder);

  ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{5})).ok());
  sim.RunUntil(Milliseconds(8));
  EXPECT_TRUE(recorder.messages.empty());
  sim.RunUntilIdle();
  ASSERT_EQ(recorder.messages.size(), 1u);
  EXPECT_EQ(recorder.messages[0].As<CommitArgs>().txn, 5u);
  EXPECT_EQ(transport.messages_sent(), 1u);
}

TEST(SimTransportTest, UnknownDestinationIsError) {
  SimRuntime sim;
  SimTransport transport(&sim, SimTransportOptions{});
  const Status status = transport.Send(MakeMessage(0, 9, CommitArgs{1}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SimTransportTest, FifoPerPair) {
  SimRuntime sim;
  SimTransport transport(&sim, SimTransportOptions{});
  Recorder recorder;
  transport.Register(1, &recorder);
  for (TxnId t = 1; t <= 20; ++t) {
    ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(recorder.messages.size(), 20u);
  for (TxnId t = 1; t <= 20; ++t) {
    EXPECT_EQ(recorder.messages[t - 1].As<CommitArgs>().txn, t);
  }
}

TEST(SimTransportTest, DropFilterInjectsLoss) {
  SimRuntime sim;
  SimTransportOptions options;
  options.drop_filter = [](const Message& msg) {
    return msg.type == MsgType::kCommit;
  };
  SimTransport transport(&sim, options);
  Recorder recorder;
  transport.Register(1, &recorder);
  ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{1})).ok());
  ASSERT_TRUE(transport.Send(MakeMessage(0, 1, AbortArgs{2})).ok());
  sim.RunUntilIdle();
  ASSERT_EQ(recorder.messages.size(), 1u);
  EXPECT_EQ(recorder.messages[0].type, MsgType::kAbort);
  EXPECT_EQ(transport.messages_dropped(), 1u);
}

TEST(SimTransportTest, SendsDuringHandlerDepartAfterCharges) {
  SimRuntime sim;
  SimTransportOptions options;
  options.message_latency = Milliseconds(9);
  SimTransport transport(&sim, options);

  class Relay : public MessageHandler {
   public:
    Relay(SimRuntime* sim, SimTransport* transport)
        : sim_(sim), transport_(transport) {}
    void OnMessage(const Message&) override {
      sim_->RuntimeFor(1)->ChargeCpu(Milliseconds(5));
      (void)transport_->Send(MakeMessage(1, 2, CommitAckArgs{1}));
    }
    SimRuntime* sim_;
    SimTransport* transport_;
  };

  class Timestamper : public MessageHandler {
   public:
    explicit Timestamper(SimRuntime* sim) : sim_(sim) {}
    void OnMessage(const Message&) override { arrival = sim_->now(); }
    SimRuntime* sim_;
    TimePoint arrival = -1;
  };

  Relay relay(&sim, &transport);
  Timestamper timestamper(&sim);
  transport.Register(1, &relay);
  transport.Register(2, &timestamper);

  sim.ScheduleGlobalEvent(0, [&] {
    (void)transport.Send(MakeMessage(0, 1, CommitArgs{1}));
  });
  sim.RunUntilIdle();
  // Path: send at 0 -> arrives at 9 -> 5 ms CPU -> departs 14 -> arrives 23.
  EXPECT_EQ(timestamper.arrival, Milliseconds(23));
}

TEST(InProcTransportTest, CodecRoundTripDelivery) {
  EventLoop loop;
  InProcTransport transport;
  Recorder recorder;
  transport.Register(1, &loop, &recorder);

  PrepareArgs args;
  args.txn = 11;
  args.writes = {ItemWrite{3, 42}};
  ASSERT_TRUE(transport.Send(MakeMessage(0, 1, args)).ok());

  // Drain the loop: post a marker and wait for it.
  loop.PostAndWait([] {});
  ASSERT_EQ(recorder.messages.size(), 1u);
  EXPECT_EQ(recorder.messages[0].As<PrepareArgs>().writes[0].value, 42);
}

TEST(InProcTransportTest, FifoAcrossManyMessages) {
  EventLoop loop;
  InProcTransport transport;
  Recorder recorder;
  transport.Register(1, &loop, &recorder);
  for (TxnId t = 1; t <= 100; ++t) {
    ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  loop.PostAndWait([] {});
  ASSERT_EQ(recorder.messages.size(), 100u);
  for (TxnId t = 1; t <= 100; ++t) {
    EXPECT_EQ(recorder.messages[t - 1].As<CommitArgs>().txn, t);
  }
}

TEST(InProcTransportTest, UnknownDestinationIsError) {
  InProcTransport transport;
  EXPECT_EQ(transport.Send(MakeMessage(0, 3, CommitArgs{1})).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace miniraid

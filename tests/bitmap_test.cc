#include "common/bitmap.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(Bitmap64Test, StartsEmpty) {
  Bitmap64 map;
  EXPECT_TRUE(map.None());
  EXPECT_FALSE(map.Any());
  EXPECT_EQ(map.Count(), 0);
}

TEST(Bitmap64Test, SetTestClear) {
  Bitmap64 map;
  map.Set(0);
  map.Set(5);
  map.Set(63);
  EXPECT_TRUE(map.Test(0));
  EXPECT_TRUE(map.Test(5));
  EXPECT_TRUE(map.Test(63));
  EXPECT_FALSE(map.Test(1));
  EXPECT_EQ(map.Count(), 3);
  map.Clear(5);
  EXPECT_FALSE(map.Test(5));
  EXPECT_EQ(map.Count(), 2);
}

TEST(Bitmap64Test, SetClearIdempotent) {
  Bitmap64 map;
  map.Set(7);
  map.Set(7);
  EXPECT_EQ(map.Count(), 1);
  map.Clear(7);
  map.Clear(7);
  EXPECT_EQ(map.Count(), 0);
}

TEST(Bitmap64Test, SetAllBounded) {
  Bitmap64 map;
  map.SetAll(4);
  EXPECT_EQ(map.bits(), 0b1111u);
  EXPECT_EQ(map.Count(), 4);
  map.SetAll(64);
  EXPECT_EQ(map.Count(), 64);
  map.ClearAll();
  EXPECT_TRUE(map.None());
}

TEST(Bitmap64Test, BitwiseOperators) {
  Bitmap64 a(0b1100);
  Bitmap64 b(0b1010);
  EXPECT_EQ((a | b).bits(), 0b1110u);
  EXPECT_EQ((a & b).bits(), 0b1000u);
  a |= b;
  EXPECT_EQ(a.bits(), 0b1110u);
  a &= Bitmap64(0b0110);
  EXPECT_EQ(a.bits(), 0b0110u);
  EXPECT_EQ(Bitmap64(5), Bitmap64(5));
}

TEST(Bitmap64Test, ConstexprUsable) {
  constexpr Bitmap64 kMap = [] {
    Bitmap64 m;
    m.Set(3);
    return m;
  }();
  static_assert(kMap.Test(3));
  static_assert(!kMap.Test(4));
  EXPECT_TRUE(kMap.Any());
}

}  // namespace
}  // namespace miniraid

#include "core/submit_window.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/managing_site.h"
#include "net/sim_transport.h"
#include "replication/site.h"
#include "sim/sim_runtime.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = {Operation::Write(0, static_cast<Value>(id))};
  return txn;
}

/// Wires the window to a real managing site over the simulator, like
/// SimCluster does, but with direct access to the SubmitWindow — the
/// cluster layer keeps it private.
class SubmitWindowTest : public ::testing::Test {
 protected:
  void Init(uint32_t max_inflight, uint32_t n_sites = 2) {
    sim_ = std::make_unique<SimRuntime>();
    transport_ = std::make_unique<SimTransport>(sim_.get(),
                                                SimTransportOptions{});
    SiteOptions site_options;
    site_options.n_sites = n_sites;
    site_options.db_size = 4;
    site_options.managing_site = n_sites;
    for (SiteId id = 0; id < n_sites; ++id) {
      sites_.push_back(std::make_unique<Site>(
          id, site_options, transport_.get(), sim_->RuntimeFor(id)));
      transport_->Register(id, sites_.back().get());
    }
    managing_ = std::make_unique<ManagingSite>(n_sites, transport_.get(),
                                               sim_->RuntimeFor(n_sites));
    transport_->Register(n_sites, managing_.get());
    window_ = std::make_unique<SubmitWindow>(managing_.get(), max_inflight);
  }

  /// Submits `id` to coordinator 0 and appends its reply to `replies_`.
  void Submit(TxnId id) {
    window_->Submit(MakeTxn(id), 0, [this](const TxnResult& reply) {
      replies_.push_back(reply);
    });
  }

  std::unique_ptr<SimRuntime> sim_;
  std::unique_ptr<SimTransport> transport_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ManagingSite> managing_;
  std::unique_ptr<SubmitWindow> window_;
  std::vector<TxnResult> replies_;
};

TEST_F(SubmitWindowTest, CloseRejectsBacklogInArrivalOrderOnly) {
  Init(/*max_inflight=*/1);
  Submit(1);  // dispatches
  Submit(2);  // backlog
  Submit(3);  // backlog
  EXPECT_EQ(window_->inflight(), 1u);
  EXPECT_EQ(window_->backlog_size(), 2u);

  window_->Close();

  // The two queued submissions were rejected synchronously, in arrival
  // order; the in-flight one is untouched.
  ASSERT_EQ(replies_.size(), 2u);
  EXPECT_EQ(replies_[0].txn, 2u);
  EXPECT_EQ(replies_[1].txn, 3u);
  EXPECT_EQ(replies_[0].outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(replies_[1].outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(window_->backlog_size(), 0u);
  EXPECT_EQ(window_->inflight(), 1u);

  // The managing site still owes the dispatched transaction exactly one
  // real reply.
  sim_->RunUntilIdle();
  ASSERT_EQ(replies_.size(), 3u);
  EXPECT_EQ(replies_[2].txn, 1u);
  EXPECT_EQ(replies_[2].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(window_->inflight(), 0u);
}

TEST_F(SubmitWindowTest, SubmitAfterCloseRejectedImmediately) {
  Init(/*max_inflight=*/2);
  window_->Close();
  EXPECT_TRUE(window_->closed());
  Submit(9);
  // Rejected synchronously — no simulation step needed.
  ASSERT_EQ(replies_.size(), 1u);
  EXPECT_EQ(replies_[0].txn, 9u);
  EXPECT_EQ(replies_[0].outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(window_->inflight(), 0u);
}

TEST_F(SubmitWindowTest, CloseIsIdempotent) {
  Init(/*max_inflight=*/1);
  Submit(1);
  Submit(2);
  window_->Close();
  window_->Close();
  ASSERT_EQ(replies_.size(), 1u);  // txn 2 rejected exactly once
  EXPECT_EQ(replies_[0].txn, 2u);
}

// A completion callback that resubmits re-enters the window from inside
// Dispatch's reply lambda. This is the regression test for the
// callback-under-lock bug class: if the window (or the wait-state plumbing
// above it) invoked callbacks while holding a non-recursive lock, this
// reentrant Submit would deadlock or corrupt the queue. The window is
// single-context by design, so it must just work.
TEST_F(SubmitWindowTest, CallbackMayResubmit) {
  Init(/*max_inflight=*/1);
  window_->Submit(MakeTxn(1), 0, [this](const TxnResult& first) {
    replies_.push_back(first);
    Submit(2);
  });
  sim_->RunUntilIdle();
  ASSERT_EQ(replies_.size(), 2u);
  EXPECT_EQ(replies_[0].txn, 1u);
  EXPECT_EQ(replies_[1].txn, 2u);
  EXPECT_EQ(replies_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(replies_[1].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(window_->inflight(), 0u);
}

// Resubmitting from a rejection callback during Close must also be safe:
// Close swaps the backlog out before rejecting, and the reentrant Submit
// sees the closed window and is rejected directly.
TEST_F(SubmitWindowTest, RejectionCallbackMayResubmit) {
  Init(/*max_inflight=*/1);
  Submit(1);  // occupies the slot
  window_->Submit(MakeTxn(2), 0, [this](const TxnResult& reply) {
    replies_.push_back(reply);
    Submit(3);
  });
  window_->Close();
  ASSERT_EQ(replies_.size(), 2u);
  EXPECT_EQ(replies_[0].txn, 2u);
  EXPECT_EQ(replies_[1].txn, 3u);
  EXPECT_EQ(replies_[1].outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(window_->backlog_size(), 0u);
}

TEST_F(SubmitWindowTest, ZeroWindowMeansUnbounded) {
  Init(/*max_inflight=*/0);
  for (TxnId id = 1; id <= 5; ++id) Submit(id);
  // Nothing queues: every submission dispatches immediately.
  EXPECT_EQ(window_->backlog_size(), 0u);
  EXPECT_EQ(window_->backlogged_total(), 0u);
  EXPECT_EQ(window_->inflight(), 5u);
  EXPECT_EQ(window_->max_inflight_seen(), 5u);

  sim_->RunUntilIdle();
  ASSERT_EQ(replies_.size(), 5u);
  for (const TxnResult& reply : replies_) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  EXPECT_EQ(window_->inflight(), 0u);
}

TEST_F(SubmitWindowTest, BacklogDrainsAsSlotsFree) {
  Init(/*max_inflight=*/2);
  for (TxnId id = 1; id <= 6; ++id) Submit(id);
  EXPECT_EQ(window_->inflight(), 2u);
  EXPECT_EQ(window_->backlog_size(), 4u);
  EXPECT_EQ(window_->backlogged_total(), 4u);

  sim_->RunUntilIdle();
  ASSERT_EQ(replies_.size(), 6u);
  for (const TxnResult& reply : replies_) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  EXPECT_EQ(window_->max_inflight_seen(), 2u);
  EXPECT_EQ(window_->backlog_size(), 0u);
}

}  // namespace
}  // namespace miniraid

// Tests of partial replication and control transaction type 3 (paper §3.2):
// reads route to holders, writes update available copies only, and the
// last fresh copy of an item gets backed up before it can be lost.

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

/// 3 sites, 6 items, item i on sites i%3 and (i+1)%3.
ClusterOptions PartialOptions(bool enable_type3) {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 6;
  options.site.enable_type3 = enable_type3;
  options.site.placement.resize(3);
  for (ItemId item = 0; item < 6; ++item) {
    options.site.placement[item % 3].push_back(item);
    options.site.placement[(item + 1) % 3].push_back(item);
  }
  return options;
}

TEST(PartialReplicationTest, PlacementWiring) {
  auto cluster_owner = MakeSimCluster(PartialOptions(false));
  SimCluster& cluster = *cluster_owner;
  // Item 0 lives on sites 0 and 1.
  EXPECT_TRUE(cluster.site(0).db().Holds(0));
  EXPECT_TRUE(cluster.site(1).db().Holds(0));
  EXPECT_FALSE(cluster.site(2).db().Holds(0));
  EXPECT_EQ(cluster.site(2).holders().HoldersOf(0),
            (std::vector<SiteId>{0, 1}));
  EXPECT_EQ(cluster.site(0).db().held_count(), 4u);
}

TEST(PartialReplicationTest, WritesReachOnlyHolders) {
  auto cluster_owner = MakeSimCluster(PartialOptions(false));
  SimCluster& cluster = *cluster_owner;
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(0).db().Read(0)->value, 10);
  EXPECT_EQ(cluster.site(1).db().Read(0)->value, 10);
  EXPECT_FALSE(cluster.site(2).db().Holds(0));
}

TEST(PartialReplicationTest, RemoteReadFetchesFromHolder) {
  auto cluster_owner = MakeSimCluster(PartialOptions(false));
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  // Site 2 holds no copy of item 0: the read fetches one remotely (a
  // copier-style request) without installing a local copy.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(2, {Operation::Read(0)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 10);
  EXPECT_FALSE(cluster.site(2).db().Holds(0));
}

TEST(PartialReplicationTest, ConsistencyOracleHandlesPartialPlacement) {
  auto cluster_owner = MakeSimCluster(PartialOptions(false));
  SimCluster& cluster = *cluster_owner;
  for (TxnId t = 1; t <= 20; ++t) {
    const ItemId item = static_cast<ItemId>(t % 6);
    (void)cluster.RunTxn(
        MakeTxn(t, {Operation::Write(item, Value(t))}),
        static_cast<SiteId>(t % 3));
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

TEST(Type3Test, LastCopyHolderCreatesBackup) {
  auto cluster_owner = MakeSimCluster(PartialOptions(true));
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  cluster.Fail(0);
  // Detection: the next transaction's coordinator announces site 0 down.
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 11)}), 1);
  cluster.RunUntilIdle();
  // Items 0 and 3 (placed on {0,1}) now have their last fresh copy on
  // site 1, which must have backed them up onto site 2.
  EXPECT_TRUE(cluster.site(2).db().Holds(0));
  EXPECT_TRUE(cluster.site(2).db().Holds(3));
  EXPECT_EQ(cluster.site(2).db().Read(0)->value, 10);
  // Everyone's holders table learned about the new copies.
  for (SiteId s = 1; s < 3; ++s) {
    EXPECT_TRUE(cluster.site(s).holders().Holds(0, 2)) << "site " << s;
  }
  EXPECT_GE(cluster.site(1).counters().control3_initiated, 1u);
  EXPECT_GE(cluster.site(2).counters().control3_copies_installed, 2u);
}

TEST(Type3Test, BackupKeepsDataAvailableThroughSecondFailure) {
  auto cluster_owner = MakeSimCluster(PartialOptions(true));
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  cluster.Fail(0);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 11)}), 1);  // detect
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(2, 12)}), 2);  // detect
  // Item 0's placement sites are both down; only the type-3 backup serves.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(0)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 10);
}

TEST(Type3Test, WithoutBackupSecondFailureLosesAvailability) {
  auto cluster_owner = MakeSimCluster(PartialOptions(false));
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  cluster.Fail(0);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 11)}), 1);
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(2, 12)}), 2);
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(0)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedCopierFailed);
}

TEST(Type3Test, NoBackupWhenAnotherFreshCopyExists) {
  // With all sites up, nothing is a last copy: type 3 must stay quiet.
  auto cluster_owner = MakeSimCluster(PartialOptions(true));
  SimCluster& cluster = *cluster_owner;
  for (TxnId t = 1; t <= 10; ++t) {
    (void)cluster.RunTxn(
        MakeTxn(t, {Operation::Write(static_cast<ItemId>(t % 6), Value(t))}),
        static_cast<SiteId>(t % 3));
  }
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.site(s).counters().control3_initiated, 0u);
    EXPECT_EQ(cluster.site(s).db().held_count(), 4u);
  }
}

}  // namespace
}  // namespace miniraid

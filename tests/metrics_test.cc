#include <gtest/gtest.h>

#include <sstream>

#include "metrics/series.h"
#include "metrics/stats.h"

namespace miniraid {
namespace {

TEST(DurationStatsTest, BasicSummary) {
  DurationStats stats;
  for (int ms : {10, 20, 30, 40, 50}) stats.Add(Milliseconds(ms));
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_EQ(stats.Min(), Milliseconds(10));
  EXPECT_EQ(stats.Max(), Milliseconds(50));
  EXPECT_EQ(stats.Mean(), Milliseconds(30));
  EXPECT_EQ(stats.Percentile(0.5), Milliseconds(30));
  EXPECT_EQ(stats.Percentile(0.0), Milliseconds(10));
  EXPECT_EQ(stats.Percentile(1.0), Milliseconds(50));
  EXPECT_DOUBLE_EQ(stats.MeanMillis(), 30.0);
}

TEST(DurationStatsTest, UnsortedInputHandled) {
  DurationStats stats;
  for (int ms : {50, 10, 40, 20, 30}) stats.Add(Milliseconds(ms));
  EXPECT_EQ(stats.Min(), Milliseconds(10));
  EXPECT_EQ(stats.Percentile(0.5), Milliseconds(30));
  // Adding after a sorted query invalidates the cache correctly.
  stats.Add(Milliseconds(5));
  EXPECT_EQ(stats.Min(), Milliseconds(5));
}

TEST(DurationStatsTest, MergeAndClear) {
  DurationStats a, b;
  a.Add(Milliseconds(10));
  b.Add(Milliseconds(30));
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Mean(), Milliseconds(20));
  a.Clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.Summary(), "n=0");
}

TEST(DurationStatsTest, SummaryFormat) {
  DurationStats stats;
  stats.Add(Milliseconds(176));
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
  EXPECT_NE(summary.find("mean=176.00ms"), std::string::npos);
}

TEST(SeriesTest, AddAndSize) {
  Series series{"fail-locks", {}, {}};
  series.Add(1, 10);
  series.Add(2, 12);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.xs[1], 2);
  EXPECT_EQ(series.ys[1], 12);
}

TEST(CsvTest, AlignsSeriesByX) {
  Series a{"a", {}, {}};
  a.Add(1, 10);
  a.Add(2, 20);
  Series b{"b", {}, {}};
  b.Add(2, 200);
  b.Add(3, 300);
  std::ostringstream out;
  WriteCsv(out, "txn", {a, b});
  EXPECT_EQ(out.str(),
            "txn,a,b\n"
            "1,10,\n"
            "2,20,200\n"
            "3,,300\n");
}

TEST(AsciiChartTest, RendersGlyphsAndLegend) {
  Series series{"curve", {}, {}};
  for (int i = 0; i <= 10; ++i) series.Add(i, i * i);
  const std::string chart =
      RenderAsciiChart({series}, 40, 10, "x-axis", "y-axis");
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("curve"), std::string::npos);
  EXPECT_NE(chart.find("x-axis"), std::string::npos);
  EXPECT_NE(chart.find("y-axis"), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);  // y max label
}

TEST(AsciiChartTest, MultipleSeriesDistinctGlyphs) {
  Series a{"a", {0, 1}, {0, 1}};
  Series b{"b", {0, 1}, {1, 0}};
  const std::string chart = RenderAsciiChart({a, b}, 30, 8, "x", "y");
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(AsciiChartTest, EmptyAndDegenerateInputs) {
  EXPECT_EQ(RenderAsciiChart({}, 40, 10, "x", "y"), "(empty chart)\n");
  Series flat{"flat", {1, 2, 3}, {5, 5, 5}};
  // Must not divide by zero on a constant series.
  const std::string chart = RenderAsciiChart({flat}, 20, 5, "x", "y");
  EXPECT_NE(chart.find('*'), std::string::npos);
}

}  // namespace
}  // namespace miniraid

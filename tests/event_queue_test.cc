#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace miniraid {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.Empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.Empty()) queue.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.Push(100, [] {});
  queue.Push(50, [] {});
  EXPECT_EQ(queue.NextTime(), 50);
  (void)queue.Pop();
  EXPECT_EQ(queue.NextTime(), 100);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue queue;
  bool ran = false;
  const EventQueue::EventId id = queue.Push(10, [&] { ran = true; });
  queue.Push(20, [] {});
  queue.Cancel(id);
  EXPECT_EQ(queue.NextTime(), 20);
  while (!queue.Empty()) queue.Pop().fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunIsNoop) {
  EventQueue queue;
  const EventQueue::EventId id = queue.Push(1, [] {});
  (void)queue.Pop();
  queue.Cancel(id);  // must not affect anything
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelAllLeavesEmptyQueue) {
  EventQueue queue;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(queue.Push(i, [] {}));
  for (const auto id : ids) queue.Cancel(id);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, PushDuringPopExecution) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(10, [&] {
    order.push_back(1);
    queue.Push(5, [&] { order.push_back(2); });  // in the past: still runs
  });
  while (!queue.Empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace miniraid

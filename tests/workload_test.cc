#include "txn/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace miniraid {
namespace {

TEST(UniformWorkloadTest, IdsStartAtOneAndIncrement) {
  UniformWorkload workload(UniformWorkloadOptions{});
  EXPECT_EQ(workload.Next().id, 1u);
  EXPECT_EQ(workload.Next().id, 2u);
  EXPECT_EQ(workload.Next().id, 3u);
}

TEST(UniformWorkloadTest, RespectsSizeBounds) {
  UniformWorkloadOptions options;
  options.db_size = 20;
  options.max_txn_size = 5;
  UniformWorkload workload(options);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec txn = workload.Next();
    EXPECT_GE(txn.ops.size(), 1u);
    EXPECT_LE(txn.ops.size(), 5u);
    for (const Operation& op : txn.ops) {
      EXPECT_LT(op.item, 20u);
    }
  }
}

TEST(UniformWorkloadTest, PaperMixIsHalfWritesAvgSize) {
  UniformWorkloadOptions options;
  options.max_txn_size = 10;
  UniformWorkload workload(options);
  uint64_t ops = 0, writes = 0, txns = 5000;
  for (uint64_t i = 0; i < txns; ++i) {
    const TxnSpec txn = workload.Next();
    ops += txn.ops.size();
    for (const Operation& op : txn.ops) writes += op.is_write();
  }
  // E[ops per txn] = 5.5 for uniform 1..10; writes ~ half of ops.
  EXPECT_NEAR(double(ops) / double(txns), 5.5, 0.2);
  EXPECT_NEAR(double(writes) / double(ops), 0.5, 0.02);
}

TEST(UniformWorkloadTest, WriteFractionKnob) {
  UniformWorkloadOptions options;
  options.write_fraction = 0.2;
  UniformWorkload workload(options);
  uint64_t ops = 0, writes = 0;
  for (int i = 0; i < 3000; ++i) {
    const TxnSpec txn = workload.Next();
    ops += txn.ops.size();
    for (const Operation& op : txn.ops) writes += op.is_write();
  }
  EXPECT_NEAR(double(writes) / double(ops), 0.2, 0.03);
}

TEST(UniformWorkloadTest, DeterministicPerSeed) {
  UniformWorkloadOptions options;
  options.seed = 77;
  UniformWorkload a(options);
  UniformWorkload b(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(UniformWorkloadTest, WritesUseCanonicalValues) {
  UniformWorkload workload(UniformWorkloadOptions{});
  for (int i = 0; i < 200; ++i) {
    const TxnSpec txn = workload.Next();
    for (const Operation& op : txn.ops) {
      if (op.is_write()) {
        EXPECT_EQ(op.value, WriteValueFor(txn.id, op.item));
      }
    }
  }
}

TEST(UniformWorkloadTest, ZipfSkewsItemChoice) {
  UniformWorkloadOptions options;
  options.zipf_theta = 0.99;
  options.db_size = 50;
  UniformWorkload workload(options);
  std::map<ItemId, int> histogram;
  for (int i = 0; i < 3000; ++i) {
    for (const Operation& op : workload.Next().ops) ++histogram[op.item];
  }
  EXPECT_GT(histogram[0], 4 * std::max(histogram[40], 1));
}

TEST(Et1WorkloadTest, LayoutAndShape) {
  Et1WorkloadOptions options;
  options.accounts = 10;
  options.tellers = 4;
  options.branches = 2;
  options.history_slots = 3;
  Et1Workload workload(options);
  EXPECT_EQ(workload.db_size(), 19u);
  EXPECT_EQ(workload.AccountItem(0), 0u);
  EXPECT_EQ(workload.TellerItem(0), 10u);
  EXPECT_EQ(workload.BranchItem(0), 14u);
  EXPECT_EQ(workload.HistoryItem(0), 16u);

  for (int i = 0; i < 500; ++i) {
    const TxnSpec txn = workload.Next();
    // DebitCredit: 3 read-modify-write pairs + 1 history insert.
    ASSERT_EQ(txn.ops.size(), 7u);
    EXPECT_TRUE(txn.ops[0].is_read());
    EXPECT_TRUE(txn.ops[1].is_write());
    EXPECT_EQ(txn.ops[0].item, txn.ops[1].item);  // account RMW
    EXPECT_LT(txn.ops[0].item, 10u);              // an account
    EXPECT_GE(txn.ops[2].item, 10u);              // a teller
    EXPECT_LT(txn.ops[2].item, 14u);
    EXPECT_GE(txn.ops[4].item, 14u);  // a branch
    EXPECT_LT(txn.ops[4].item, 16u);
    EXPECT_TRUE(txn.ops[6].is_write());  // history insert
    EXPECT_GE(txn.ops[6].item, 16u);
  }
}

TEST(Et1WorkloadTest, HistoryCycles) {
  Et1WorkloadOptions options;
  options.history_slots = 2;
  Et1Workload workload(options);
  const ItemId h0 = workload.Next().ops[6].item;
  const ItemId h1 = workload.Next().ops[6].item;
  const ItemId h2 = workload.Next().ops[6].item;
  EXPECT_NE(h0, h1);
  EXPECT_EQ(h0, h2);
}

TEST(WisconsinWorkloadTest, ScansAndUpdates) {
  WisconsinWorkloadOptions options;
  options.db_size = 20;
  options.scan_length = 5;
  options.scan_fraction = 0.5;
  WisconsinWorkload workload(options);
  int scans = 0, updates = 0;
  for (int i = 0; i < 2000; ++i) {
    const TxnSpec txn = workload.Next();
    if (txn.ops.size() == 5 &&
        std::all_of(txn.ops.begin(), txn.ops.end(),
                    [](const Operation& op) { return op.is_read(); })) {
      ++scans;
      // Contiguous modulo db_size.
      for (size_t k = 1; k < txn.ops.size(); ++k) {
        EXPECT_EQ(txn.ops[k].item, (txn.ops[0].item + k) % 20);
      }
    } else {
      ++updates;
      ASSERT_EQ(txn.ops.size(), 2u);
      EXPECT_TRUE(txn.ops[0].is_read());
      EXPECT_TRUE(txn.ops[1].is_write());
      EXPECT_EQ(txn.ops[0].item, txn.ops[1].item);
    }
  }
  EXPECT_NEAR(scans, 1000, 120);
  EXPECT_NEAR(updates, 1000, 120);
}

TEST(WisconsinWorkloadTest, ScanLengthClampedToDb) {
  WisconsinWorkloadOptions options;
  options.db_size = 3;
  options.scan_length = 10;
  options.scan_fraction = 1.0;
  WisconsinWorkload workload(options);
  EXPECT_EQ(workload.Next().ops.size(), 3u);
}

}  // namespace
}  // namespace miniraid

#include "replication/placement.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(HoldersTableTest, FullReplicationEveryoneHoldsAll) {
  HoldersTable table(10, 4);
  for (ItemId item = 0; item < 10; ++item) {
    for (SiteId site = 0; site < 4; ++site) {
      EXPECT_TRUE(table.Holds(item, site));
    }
    EXPECT_EQ(table.HoldersOf(item), (std::vector<SiteId>{0, 1, 2, 3}));
  }
}

TEST(HoldersTableTest, FromPlacement) {
  const std::vector<std::vector<ItemId>> placement = {
      {0, 1}, {1, 2}, {2, 0}};
  HoldersTable table = HoldersTable::FromPlacement(3, 3, placement);
  EXPECT_TRUE(table.Holds(0, 0));
  EXPECT_TRUE(table.Holds(0, 2));
  EXPECT_FALSE(table.Holds(0, 1));
  EXPECT_EQ(table.HoldersOf(1), (std::vector<SiteId>{0, 1}));
  EXPECT_EQ(table.ItemsHeldBy(2), (std::vector<ItemId>{0, 2}));
}

TEST(HoldersTableTest, AddRemove) {
  HoldersTable table = HoldersTable::FromPlacement(2, 2, {{0}, {1}});
  table.Add(0, 1);  // a type-3 backup copy
  EXPECT_TRUE(table.Holds(0, 1));
  EXPECT_EQ(table.HoldersOf(0), (std::vector<SiteId>{0, 1}));
  table.Remove(0, 1);
  EXPECT_FALSE(table.Holds(0, 1));
}

TEST(HoldersTableTest, RowBitmap) {
  HoldersTable table = HoldersTable::FromPlacement(2, 4, {{0}, {}, {0}, {}});
  EXPECT_EQ(table.Row(0).bits(), 0b0101u);
  EXPECT_TRUE(table.Row(1).None());
}

}  // namespace
}  // namespace miniraid

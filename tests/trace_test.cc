#include "metrics/trace.h"

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace miniraid {
namespace {

TEST(TraceLogTest, RecordsAndFilters) {
  TraceLog log;
  log.Record(Milliseconds(1), 0, TraceEvent::kTxnReceived, 7, 3);
  log.Record(Milliseconds(2), 1, TraceEvent::kPrepareHandled, 7, 2);
  log.Record(Milliseconds(3), 0, TraceEvent::kTxnCommitted, 7, 0);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Count(TraceEvent::kTxnReceived), 1u);
  EXPECT_EQ(log.Filter(TraceEvent::kPrepareHandled).at(0).site, 1u);
  EXPECT_EQ(log.ForSite(0).size(), 2u);
}

TEST(TraceLogTest, BoundedCapacityDropsOldest) {
  TraceLog log(/*capacity=*/3);
  for (uint64_t i = 0; i < 5; ++i) {
    log.Record(0, 0, TraceEvent::kTxnReceived, i, 0);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.Snapshot().front().a, 2u);  // 0 and 1 dropped
}

TEST(TraceLogTest, DumpIsReadable) {
  TraceLog log;
  log.Record(Milliseconds(12), 2, TraceEvent::kRecoveryStarted, 5, 0);
  const std::string dump = log.Dump();
  EXPECT_NE(dump.find("site 2"), std::string::npos);
  EXPECT_NE(dump.find("RecoveryStarted"), std::string::npos);
  EXPECT_NE(dump.find("12.000ms"), std::string::npos);
}

TEST(TraceLogTest, EveryEventHasAUniqueName) {
  std::set<std::string_view> names;
  for (int e = 0; e <= static_cast<int>(TraceEvent::kBatchCopierStarted);
       ++e) {
    names.insert(TraceEventName(static_cast<TraceEvent>(e)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(TraceEvent::kBatchCopierStarted) + 1);
}

TEST(SiteTracingTest, FullCycleProducesExpectedEventSequence) {
  TraceLog log;
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 6;
  options.site.trace = &log;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  TxnSpec txn;
  txn.id = 1;
  txn.ops = {Operation::Write(3, 30)};
  (void)cluster.RunTxn(txn, 0);
  cluster.Fail(1);
  txn.id = 2;
  (void)cluster.RunTxn(txn, 0);  // detects the failure
  txn.id = 3;
  txn.ops = {Operation::Write(4, 40)};
  (void)cluster.RunTxn(txn, 0);
  cluster.Recover(1);
  txn.id = 4;
  txn.ops = {Operation::Read(4)};
  (void)cluster.RunTxn(txn, 1);  // copier at the recovering site

  // The protocol's externally visible story, in the trace:
  EXPECT_GE(log.Count(TraceEvent::kTxnReceived), 4u);
  EXPECT_GE(log.Count(TraceEvent::kTxnCommitted), 3u);
  EXPECT_EQ(log.Count(TraceEvent::kTxnAborted), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kCrashed), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kFailureDetected), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kRecoveryStarted), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kRecoveryServed), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kRecoveryCompleted), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kCopierStarted), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kCopyServed), 1u);
  EXPECT_EQ(log.Count(TraceEvent::kClearLocksSent), 1u);

  // Ordering: crash before recovery start before recovery completion.
  const auto crashed = log.Filter(TraceEvent::kCrashed).at(0);
  const auto started = log.Filter(TraceEvent::kRecoveryStarted).at(0);
  const auto completed = log.Filter(TraceEvent::kRecoveryCompleted).at(0);
  EXPECT_LE(crashed.when, started.when);
  EXPECT_LE(started.when, completed.when);
  // The recovery-completed record reports the merged stale-copy count.
  EXPECT_EQ(completed.b, 1u);  // item 4 missed one update
}

TEST(SiteTracingTest, DisabledTraceCostsNothingAndRecordsNothing) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  auto cluster_owner = MakeSimCluster(options);  // options.site.trace == nullptr
  SimCluster& cluster = *cluster_owner;
  TxnSpec txn;
  txn.id = 1;
  txn.ops = {Operation::Write(0, 1)};
  EXPECT_EQ(cluster.RunTxn(txn, 0).outcome, TxnOutcome::kCommitted);
}

}  // namespace
}  // namespace miniraid

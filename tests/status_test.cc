#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace miniraid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::TimedOut("no ack from site 3");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsTimedOut());
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
  EXPECT_EQ(status.message(), "no ack from site 3");
  EXPECT_EQ(status.ToString(), "TimedOut: no ack from site 3");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::Ok().IsAborted());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= 10; ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "Unknown");
  }
}

Status FailsThrough() {
  MINIRAID_RETURN_IF_ERROR(Status::Corruption("bad byte"));
  return Status::Ok();
}

Status Passes() {
  MINIRAID_RETURN_IF_ERROR(Status::Ok());
  return Status::AlreadyExists("reached the end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kCorruption);
  EXPECT_EQ(Passes().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  MINIRAID_ASSIGN_OR_RETURN(const int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_EQ(QuarterOf(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterOf(7).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace miniraid

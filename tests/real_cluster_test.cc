// Integration tests of the identical protocol engine on the real runtimes:
// event-loop threads with in-process queues, and TCP sockets on localhost.
// These validate the SiteRuntime/Transport abstraction boundary: nothing in
// the protocol may depend on virtual time.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

ClusterOptions Options(ClusterBackend backend, uint32_t n_sites) {
  ClusterOptions options;
  options.backend = backend;
  options.n_sites = n_sites;
  options.db_size = 12;
  options.site.ack_timeout = Milliseconds(250);
  options.managing.client_timeout = Seconds(5);
  return options;
}

class RealClusterTest : public ::testing::TestWithParam<ClusterBackend> {
 protected:
  std::unique_ptr<Cluster> Make(uint32_t n_sites) {
    auto cluster = MakeCluster(Options(GetParam(), n_sites));
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return std::move(*cluster);
  }
};

TEST_P(RealClusterTest, CommitReplicates) {
  auto cluster = Make(3);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(1, {Operation::Write(4, 44)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  const std::vector<SiteSnapshot> snaps = cluster->SnapshotSites();
  for (SiteId s = 0; s < 3; ++s) {
    ASSERT_TRUE(snaps[s].db[4].has_value()) << "site " << s;
    EXPECT_EQ(snaps[s].db[4]->value, 44) << "site " << s;
    EXPECT_EQ(snaps[s].db[4]->version, 1u) << "site " << s;
  }
}

TEST_P(RealClusterTest, FailureRecoveryRoundTrip) {
  auto cluster = Make(3);
  ASSERT_EQ(cluster->RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kCommitted);

  cluster->Fail(2);
  // First write detects the failure (abort), second proceeds via ROWAA.
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(3, 33)}), 0);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(3, {Operation::Write(3, 34)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_GE(cluster->SnapshotSites()[0].fail_locks.CountForSite(2), 1u);

  cluster->Recover(2);
  // Wait until the recovering site has its merged fail-lock table.
  ASSERT_TRUE(cluster->WaitUntil(
      2, [](const Site& site) { return site.OwnFailLockCount() >= 1; }));
  // A read at the recovering site triggers a copier transaction.
  const TxnResult read_reply =
      cluster->RunTxn(MakeTxn(4, {Operation::Read(3)}), 2);
  EXPECT_EQ(read_reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(read_reply.reads.at(0).value, 34);
  EXPECT_GE(read_reply.copier_count, 1u);
}

TEST_P(RealClusterTest, WorkloadBurstKeepsReplicasConsistent) {
  auto cluster = Make(3);
  UniformWorkloadOptions wopts;
  wopts.db_size = 12;
  wopts.max_txn_size = 5;
  wopts.seed = 3;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 60; ++i) {
    (void)cluster->RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  const std::vector<SiteSnapshot> snaps = cluster->SnapshotSites();
  for (SiteId s = 0; s < 3; ++s) {
    for (ItemId item = 0; item < 12; ++item) {
      ASSERT_TRUE(snaps[s].db[item].has_value());
      EXPECT_EQ(snaps[s].db[item]->value, snaps[0].db[item]->value)
          << "site " << s << " item " << item;
      EXPECT_EQ(snaps[s].db[item]->version, snaps[0].db[item]->version)
          << "site " << s << " item " << item;
    }
  }
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(RealClusterTest, ReliableChannelRepairsLossOnRealRuntimes) {
  // The channel's retransmit timers and dedup state run on real event-loop
  // threads here, not virtual time — this is the wiring the sim-based
  // channel tests cannot cover. 10% loss + 5% duplication must be invisible
  // to clients: every transaction commits without a client timeout.
  ClusterOptions options = Options(GetParam(), 3);
  options.reliable.enabled = true;
  options.site.retry_limit = 2;
  TransportFaults faults;
  faults.drop_probability = 0.10;
  faults.duplicate_probability = 0.05;
  faults.seed = 3;
  options.inproc.faults = faults;
  options.tcp.faults = faults;
  auto made = MakeCluster(options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto& cluster = **made;

  for (TxnId id = 1; id <= 30; ++id) {
    const TxnResult reply = cluster.RunTxn(
        MakeTxn(id, {Operation::Write(static_cast<ItemId>(id % 12),
                                      static_cast<Value>(100 + id))}),
        static_cast<SiteId>(id % 3));
    ASSERT_EQ(reply.outcome, TxnOutcome::kCommitted) << "txn " << id;
  }

  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.unreachable, 0u);
  EXPECT_EQ(stats.late_outcomes, 0u);
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.channel.retransmits, 0u);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST_P(RealClusterTest, TwoTcpClustersCoexistInOneProcess) {
  // Regression test for base_port = 0 collisions: two clusters stood up
  // back to back in one process must land on disjoint port ranges.
  auto first = Make(3);
  auto second = Make(3);
  EXPECT_EQ(first->RunTxn(MakeTxn(1, {Operation::Write(2, 5)}), 0).outcome,
            TxnOutcome::kCommitted);
  EXPECT_EQ(second->RunTxn(MakeTxn(1, {Operation::Write(2, 6)}), 1).outcome,
            TxnOutcome::kCommitted);
  EXPECT_EQ(first->SnapshotSites()[1].db[2]->value, 5);
  EXPECT_EQ(second->SnapshotSites()[1].db[2]->value, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, RealClusterTest,
    ::testing::Values(ClusterBackend::kInProc, ClusterBackend::kTcp),
    [](const ::testing::TestParamInfo<ClusterBackend>& info) {
      return std::string(ClusterBackendName(info.param));
    });

}  // namespace
}  // namespace miniraid

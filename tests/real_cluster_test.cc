// Integration tests of the identical protocol engine on the real runtimes:
// event-loop threads with in-process queues, and TCP sockets on localhost.
// These validate the SiteRuntime/Transport abstraction boundary: nothing in
// the protocol may depend on virtual time.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

RealClusterOptions Options(RealClusterOptions::TransportKind kind,
                           uint32_t n_sites) {
  RealClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = 12;
  options.transport = kind;
  options.site.ack_timeout = Milliseconds(250);
  options.managing.client_timeout = Seconds(5);
  return options;
}

class RealClusterTest
    : public ::testing::TestWithParam<RealClusterOptions::TransportKind> {};

TEST_P(RealClusterTest, CommitReplicates) {
  RealCluster cluster(Options(GetParam(), 3));
  ASSERT_TRUE(cluster.Start().ok());
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(4, 44)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  for (SiteId s = 0; s < 3; ++s) {
    ItemState state;
    cluster.Inspect(s, [&state](Site& site) { state = *site.db().Read(4); });
    EXPECT_EQ(state.value, 44) << "site " << s;
    EXPECT_EQ(state.version, 1u) << "site " << s;
  }
}

TEST_P(RealClusterTest, FailureRecoveryRoundTrip) {
  RealCluster cluster(Options(GetParam(), 3));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kCommitted);

  cluster.Fail(2);
  // First write detects the failure (abort), second proceeds via ROWAA.
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 33)}), 0);
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Write(3, 34)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  uint32_t stale = 0;
  cluster.Inspect(0, [&stale](Site& site) {
    stale = site.fail_locks().CountForSite(2);
  });
  EXPECT_GE(stale, 1u);

  cluster.Recover(2);
  // Wait until the recovering site has its merged fail-lock table.
  ASSERT_TRUE(cluster.WaitUntil(
      2, [](Site& site) { return site.OwnFailLockCount() >= 1; }));
  // A read at the recovering site triggers a copier transaction.
  const TxnReplyArgs read_reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(3)}), 2);
  EXPECT_EQ(read_reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(read_reply.reads.at(0).value, 34);
  EXPECT_GE(read_reply.copier_count, 1u);
}

TEST_P(RealClusterTest, WorkloadBurstKeepsReplicasConsistent) {
  RealCluster cluster(Options(GetParam(), 3));
  ASSERT_TRUE(cluster.Start().ok());
  UniformWorkloadOptions wopts;
  wopts.db_size = 12;
  wopts.max_txn_size = 5;
  wopts.seed = 3;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 60; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  std::vector<std::vector<ItemState>> snapshots(3);
  for (SiteId s = 0; s < 3; ++s) {
    cluster.Inspect(s, [&snapshots, s](Site& site) {
      for (ItemId item = 0; item < 12; ++item) {
        snapshots[s].push_back(*site.db().Read(item));
      }
    });
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[1], snapshots[2]);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, RealClusterTest,
    ::testing::Values(RealClusterOptions::TransportKind::kInProc,
                      RealClusterOptions::TransportKind::kTcp),
    [](const ::testing::TestParamInfo<RealClusterOptions::TransportKind>&
           info) {
      return info.param == RealClusterOptions::TransportKind::kInProc
                 ? "InProc"
                 : "Tcp";
    });

}  // namespace
}  // namespace miniraid

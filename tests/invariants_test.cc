// Tests for the runtime protocol invariant checker (src/core/invariants):
// a clean cluster passes every check, and each class of injected corruption
// — flipped fail-lock bits, mismatched tables, stale or regressed session
// vectors, unlocked stale replicas — is reported as the right violation.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.h"
#include "core/invariants.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

/// A 3-site cluster that has committed traffic, survived a failure and a
/// recovery, and is quiescent — a state where every invariant must hold.
class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantCheckerTest() {
    ClusterOptions options;
    options.n_sites = 3;
    options.db_size = 8;
    cluster_ = MakeSimCluster(options);
    (void)cluster_->RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
    (void)cluster_->RunTxn(MakeTxn(2, {Operation::Write(3, 30)}), 1);
    cluster_->Fail(2);
    // The first post-failure transaction times out against the silent site
    // and aborts (detecting the failure); the retry commits with site 2
    // fail-locked.
    (void)cluster_->RunTxn(MakeTxn(3, {Operation::Write(0, 11)}), 0);
    (void)cluster_->RunTxn(MakeTxn(4, {Operation::Write(0, 11)}), 0);
    cluster_->Recover(2);
    (void)cluster_->RunTxn(MakeTxn(5, {Operation::Read(0)}), 2);
  }

  static bool Reports(const std::vector<InvariantViolation>& violations,
                      InvariantKind kind) {
    return std::any_of(
        violations.begin(), violations.end(),
        [kind](const InvariantViolation& v) { return v.kind == kind; });
  }

  std::unique_ptr<SimCluster> cluster_;
  InvariantChecker checker_;
};

TEST_F(InvariantCheckerTest, CleanClusterPassesEveryCheck) {
  const std::vector<InvariantViolation> violations =
      checker_.Check(cluster_->SnapshotSites());
  EXPECT_TRUE(violations.empty())
      << violations.front().ToString() << " (+" << violations.size() - 1
      << " more)";
  EXPECT_EQ(checker_.checks_run(), 1u);
}

TEST_F(InvariantCheckerTest, CorruptedFailLockBitmapIsReported) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  // Flip a bit at one operational observer only: site 0 now claims site
  // 1's copy of item 5 is stale, while everyone else (including site 1)
  // disagrees.
  sites[0].fail_locks.Set(5, 1);
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kFailLockAgreement));
  EXPECT_TRUE(Reports(violations, InvariantKind::kFailLockSession));
}

TEST_F(InvariantCheckerTest, FailLockForNonexistentSiteIsReported) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  // A table wider than the cluster with a bit beyond the configured site
  // count (the shape FailLockTable itself can never produce, but a
  // corrupted wire merge could).
  FailLockTable wide(8, 8);
  wide.Set(2, 6);
  sites[1] = SiteSnapshot(sites[1].id, sites[1].status, sites[1].sessions,
                          std::move(wide), sites[1].holders, sites[1].db);
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kFailLockShape));
}

TEST_F(InvariantCheckerTest, FailLockForNonHolderIsReported) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  // Site 0 fail-locks (item 4, site 2) but also records that site 2 holds
  // no copy of item 4 — a lock on a copy that does not exist.
  sites[0].holders.Remove(4, 2);
  sites[0].fail_locks.Set(4, 2);
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kFailLockShape));
}

TEST_F(InvariantCheckerTest, SessionVectorAheadOfSourceIsReported) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  // Site 0 records session 99 for site 1, but sessions are born at their
  // site and site 1 is only on session 1.
  sites[0].sessions.Set(1, 99, SiteStatus::kUp);
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kSessionMonotonicity));
}

TEST_F(InvariantCheckerTest, SessionRegressionAcrossChecksIsReported) {
  // First check records the history: site 2 is on session 2 after its
  // recovery.
  ASSERT_TRUE(checker_.Check(cluster_->SnapshotSites()).empty());
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  ASSERT_EQ(sites[0].sessions.session(2), 2u);
  // A stale session vector reappears at site 0: its recorded session for
  // site 2 drops back to 1.
  sites[0].sessions.Set(2, 1, SiteStatus::kUp);
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kSessionMonotonicity));
}

TEST_F(InvariantCheckerTest, UnlockedStaleReplicaIsReported) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  // Item 0 was committed twice (v2 = value 11). Regress site 1's copy
  // without any fail-lock recording the staleness: a ROWAA commit that
  // skipped an operational site.
  ASSERT_TRUE(sites[1].db[0].has_value());
  sites[1].db[0] = ItemState{10, 1};
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  EXPECT_TRUE(Reports(violations, InvariantKind::kWriteCoverage));
}

TEST_F(InvariantCheckerTest, DisabledChecksStaySilent) {
  InvariantChecker::Options options;
  options.check_write_coverage = false;
  InvariantChecker lax(options);
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  sites[1].db[0] = ItemState{10, 1};
  EXPECT_TRUE(lax.Check(sites).empty());
}

TEST_F(InvariantCheckerTest, ViolationToStringNamesTheInvariant) {
  std::vector<SiteSnapshot> sites = cluster_->SnapshotSites();
  sites[1].db[0] = ItemState{10, 1};
  const std::vector<InvariantViolation> violations = checker_.Check(sites);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().ToString().find("WriteCoverage"),
            std::string::npos);
}

TEST(SimClusterInvariantsTest, EnforcedClusterRunsCleanThroughFailures) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 10;
  options.check_invariants = true;  // MR_CHECK-aborts on any violation
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 10;
  wopts.max_txn_size = 4;
  wopts.seed = 42;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 4));
  }
  cluster.Fail(1);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(2 + i % 2));
  }
  cluster.Recover(1);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 4));
  }
  EXPECT_TRUE(cluster.CheckInvariants().empty());
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SimClusterInvariantsTest, LoseStateClusterRunsCleanUnderEnforcement) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 6;
  options.site.lose_state_on_crash = true;
  options.check_invariants = true;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(4, 44)}), 0);
  cluster.Recover(1);
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(2)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster.CheckInvariants().empty());
}

}  // namespace
}  // namespace miniraid

// The closed-/open-loop workload driver over the unified Cluster API, and
// the determinism contract of pipelined submission on the simulator: the
// same seed must reproduce byte-identical outcome sequences, database
// state, and invariant-checker verdicts, however many transactions overlap
// in virtual time.

#include "txn/driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/strings.h"
#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

ClusterOptions SimOptions(uint32_t n_sites, uint32_t db_size,
                          uint32_t window) {
  ClusterOptions options;
  options.backend = ClusterBackend::kSim;
  options.n_sites = n_sites;
  options.db_size = db_size;
  options.max_inflight = window;
  return options;
}

std::unique_ptr<Cluster> Make(const ClusterOptions& options) {
  auto cluster = MakeCluster(options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return std::move(*cluster);
}

TEST(DriverTest, ClosedLoopRunsAllTransactions) {
  auto cluster = Make(SimOptions(3, 12, 0));
  UniformWorkloadOptions wopts;
  wopts.db_size = 12;
  wopts.max_txn_size = 4;
  wopts.seed = 2;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 5;
  dopts.measure_txns = 40;
  const DriverReport report = Driver(cluster.get(), &workload, dopts).Run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.submitted, 40u);
  EXPECT_EQ(report.committed + report.aborted + report.unreachable, 40u);
  EXPECT_EQ(report.committed, 40u);  // healthy cluster: everything commits
  EXPECT_EQ(report.latency.count(), 40u);
  EXPECT_GT(report.elapsed, 0);
  EXPECT_GT(report.CommittedPerSec(), 0.0);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST(DriverTest, WarmupTransactionsAreNotMeasured) {
  auto cluster = Make(SimOptions(2, 8, 0));
  UniformWorkloadOptions wopts;
  wopts.db_size = 8;
  wopts.seed = 4;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 3;
  dopts.warmup_txns = 10;
  dopts.measure_txns = 25;
  const DriverReport report = Driver(cluster.get(), &workload, dopts).Run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.submitted, 25u);
  EXPECT_EQ(report.latency.count(), 25u);
  // All 35 ran through the cluster, only 25 were recorded.
  EXPECT_EQ(cluster->Stats().submitted, 35u);
}

TEST(DriverTest, OpenLoopArrivalsPaceVirtualTime) {
  auto cluster = Make(SimOptions(2, 8, 0));
  UniformWorkloadOptions wopts;
  wopts.db_size = 8;
  wopts.seed = 6;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.arrival_per_sec = 50.0;  // fixed 20 ms gaps of virtual time
  dopts.measure_txns = 21;
  const DriverReport report = Driver(cluster.get(), &workload, dopts).Run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.submitted, 21u);
  EXPECT_EQ(report.committed, 21u);
  // 20 gaps of 20 ms between the first and last submission.
  EXPECT_GE(report.elapsed, Milliseconds(20) * 20);
}

TEST(DriverTest, SubmissionWindowCapsDriverConcurrency) {
  auto cluster = Make(SimOptions(2, 8, /*window=*/2));
  UniformWorkloadOptions wopts;
  wopts.db_size = 8;
  wopts.seed = 8;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 10;  // driver offers 10, window admits 2
  dopts.measure_txns = 30;
  const DriverReport report = Driver(cluster.get(), &workload, dopts).Run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.committed, 30u);
  const ClusterStats stats = cluster->Stats();
  EXPECT_LE(stats.max_inflight_seen, 2u);
  EXPECT_GE(stats.backlogged, 8u);
}

/// One pipelined run with failure and recovery in the middle; returns a
/// fingerprint covering every measured outcome, the final database image,
/// message count, and the invariant-checker verdict.
std::string DeterminismFingerprint(ConcurrencyOptions concurrency = {}) {
  ClusterOptions options = SimOptions(4, 16, /*window=*/6);
  options.site.concurrency = concurrency;
  options.check_invariants = true;  // enforced at Fail/Recover quiescence
  auto cluster = Make(options);

  UniformWorkloadOptions wopts;
  wopts.db_size = 16;
  wopts.max_txn_size = 5;
  wopts.seed = 13;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 6;
  dopts.measure_txns = 40;
  dopts.record_outcomes = true;

  std::string fp;
  auto phase = [&] {
    const DriverReport report =
        Driver(cluster.get(), &workload, dopts).Run();
    EXPECT_TRUE(report.completed);
    for (const TxnOutcome outcome : report.outcomes) {
      fp += StrFormat("%d,", int(outcome));
    }
    fp += StrFormat("|t=%lld|", (long long)report.elapsed);
  };

  phase();
  cluster->Fail(2);
  phase();
  cluster->Recover(2);
  phase();

  for (const SiteSnapshot& snap : cluster->SnapshotSites()) {
    for (const auto& item : snap.db) {
      if (!item.has_value()) continue;
      fp += StrFormat("%lld:%llu,", (long long)item->value,
                      (unsigned long long)item->version);
    }
    fp += ";";
  }
  fp += StrFormat("msgs=%llu|", (unsigned long long)
                  cluster->Stats().messages_sent);
  fp += StrFormat("violations=%zu", cluster->CheckInvariants().size());
  return fp;
}

TEST(DriverTest, PipelinedSubmissionIsDeterministicUnderSim) {
  const std::string first = DeterminismFingerprint();
  const std::string second = DeterminismFingerprint();
  EXPECT_EQ(first, second);
  // And the runs were non-trivial: outcomes were actually recorded.
  EXPECT_GT(first.size(), 120u * 2);
}

TEST(DriverTest, SerialModeIsTheDefaultAndStaysDeterministic) {
  // ConcurrencyOptions default to mode=serial, and an explicit serial
  // configuration must be indistinguishable from the default — the paper
  // experiments reproduce unchanged after the concurrency redesign.
  ConcurrencyOptions serial;
  serial.mode = ConcurrencyMode::kSerial;
  const std::string explicit_serial = DeterminismFingerprint(serial);
  EXPECT_EQ(explicit_serial, DeterminismFingerprint());
  EXPECT_EQ(explicit_serial, DeterminismFingerprint(serial));
}

}  // namespace
}  // namespace miniraid

// Fault-injection tests: network partitions (PartitionController), latency
// jitter (in-order delivery must survive), lose-state (cold restart)
// crashes, and the lossy-network suite — a per-message-type drop sweep
// repaired by the reliable channel / the protocol's own retries, duplicate
// determinism, and the end-to-end 10%-loss acceptance run.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>

#include "core/cluster.h"
#include "net/partition.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

TEST(PartitionControllerTest, CrossesOnlyBetweenGroups) {
  PartitionController partition;
  EXPECT_FALSE(partition.Partitioned());
  partition.Split({{0, 1}, {2, 3}});
  EXPECT_TRUE(partition.Crosses(0, 2));
  EXPECT_TRUE(partition.Crosses(3, 1));
  EXPECT_FALSE(partition.Crosses(0, 1));
  EXPECT_FALSE(partition.Crosses(2, 3));
  // Unassigned endpoints (the managing site) reach everyone.
  EXPECT_FALSE(partition.Crosses(0, 4));
  EXPECT_FALSE(partition.Crosses(4, 2));
  partition.Heal();
  EXPECT_FALSE(partition.Crosses(0, 2));
}

TEST(PartitionTest, MinoritySideDetectsMajorityAsFailed) {
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 8;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0, 1}, {2}});
  // Site 2's next coordinated write times out on both peers and announces
  // them failed — to nobody reachable, but its own vector updates.
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 2);
  EXPECT_FALSE(cluster.site(2).session_vector().IsUp(0));
  EXPECT_FALSE(cluster.site(2).session_vector().IsUp(1));
  // The majority side likewise writes 2 off after one timeout.
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 2)}), 0);
  EXPECT_FALSE(cluster.site(0).session_vector().IsUp(2));
  EXPECT_TRUE(cluster.site(0).session_vector().IsUp(1));
}

TEST(PartitionTest, RowaaDivergesUnderPartitionTheDocumentedLimitation) {
  // ROWAA assumes site failures, not partitions: during a split both sides
  // keep accepting writes to "all available copies" and the replicas
  // diverge — exactly why the paper's protocol family needs a partition-
  // free network (or quorum-style protocols; see the baselines).
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0}, {1}});
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(0, 100)}), 0);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(0, 1)}), 1);  // detect
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(0, 200)}), 1);
  partition.Heal();

  // Both sides committed conflicting values for item 0; each side's
  // fail-lock table blames the other, so the oracle that exempts locked
  // copies still "passes" — but the raw values demonstrably diverged.
  EXPECT_EQ(cluster.site(0).db().Read(0)->value, 100);
  EXPECT_EQ(cluster.site(1).db().Read(0)->value, 200);
  EXPECT_TRUE(cluster.site(0).fail_locks().IsSet(0, 1));
  EXPECT_TRUE(cluster.site(1).fail_locks().IsSet(0, 0));
}

TEST(PartitionTest, HealedPartitionRecoversViaControlType1) {
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 8;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0, 1}, {2}});
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(3, 1)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 33)}), 0);
  partition.Heal();
  // Treat the isolated site like a recovering one (it made no conflicting
  // commits — it was never asked to coordinate): crash + type-1 recovery
  // brings it back cleanly.
  cluster.Fail(2);
  cluster.Recover(2);
  EXPECT_TRUE(cluster.site(2).fail_locks().IsSet(3, 2));
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(3)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 33);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(JitterTest, FifoPreservedUnderJitter) {
  SimRuntime sim;
  SimTransportOptions options;
  options.message_latency = Milliseconds(5);
  options.latency_jitter = Milliseconds(20);
  options.jitter_seed = 99;
  SimTransport transport(&sim, options);

  class Recorder : public MessageHandler {
   public:
    void OnMessage(const Message& msg) override {
      order.push_back(msg.As<CommitArgs>().txn);
    }
    std::vector<TxnId> order;
  };
  Recorder recorder;
  transport.Register(1, &recorder);
  for (TxnId t = 1; t <= 50; ++t) {
    ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(recorder.order.size(), 50u);
  for (TxnId t = 1; t <= 50; ++t) {
    EXPECT_EQ(recorder.order[t - 1], t) << "reordered under jitter";
  }
}

TEST(JitterTest, ProtocolCorrectUnderJitteredLatency) {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 10;
  options.transport.latency_jitter = Milliseconds(30);
  options.transport.jitter_seed = 7;
  options.check_invariants = true;  // full invariant suite at every step
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 10;
  wopts.max_txn_size = 5;
  wopts.seed = 7;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 40; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  cluster.Fail(1);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(2 * (i % 2)));
  }
  cluster.Recover(1);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

TEST(LoseStateTest, ColdRestartRefreshesEverythingBeforeServing) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 6;
  options.site.lose_state_on_crash = true;
  options.check_invariants = true;  // full invariant suite at every step
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  cluster.Fail(1);
  // Site 1's memory is gone, including the value of item 2 committed
  // before the crash — which no fail-lock at site 0 records.
  EXPECT_EQ(cluster.site(1).db().Read(2)->version, 0u);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(4, 44)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(4, 45)}), 0);
  cluster.Recover(1);
  // Conservative fail-locking covers every copy, not just item 4.
  EXPECT_EQ(cluster.site(1).OwnFailLockCount(), 6u);
  // Reads at the restarted site go through copier transactions and return
  // the correct pre-crash value.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(2)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 22);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(LoseStateTest, SessionCounterSurvivesColdRestart) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  options.site.lose_state_on_crash = true;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(1);
  cluster.Recover(1);
  cluster.Fail(1);
  cluster.Recover(1);
  // Two restarts: session 3. A repeated session number would break the
  // type-2 stale-announcement guard.
  EXPECT_EQ(cluster.site(1).session_vector().session(1), 3u);
  EXPECT_EQ(cluster.site(0).session_vector().session(1), 3u);
}

TEST(LoseStateTest, BatchModeDrainsColdRestartQuickly) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 12;
  options.site.lose_state_on_crash = true;
  options.site.batch_copier_threshold = 1.0;  // proactive refresh
  options.site.batch_copier_chunk = 4;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  for (TxnId t = 1; t <= 6; ++t) {
    (void)cluster.RunTxn(
        MakeTxn(t, {Operation::Write(static_cast<ItemId>(t), Value(t))}), 0);
  }
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(7, {Operation::Write(0, 7)}), 0);  // detect
  cluster.Recover(1);
  // Recovery ran to quiescence with batch copiers: no stale copies remain,
  // and the pre-crash values are all back.
  EXPECT_EQ(cluster.site(1).OwnFailLockCount(), 0u);
  for (TxnId t = 1; t <= 6; ++t) {
    EXPECT_EQ(cluster.site(1).db().Read(static_cast<ItemId>(t))->value,
              Value(t));
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

// ---------------------------------------------------------------------------
// Lossy-network suite: losing any single protocol message must never wedge
// the protocol or diverge the replicas.
// ---------------------------------------------------------------------------

/// Runs the full protocol surface — commit, failure detection, ROWAA with
/// fail-lock maintenance, type-1 recovery, an on-demand copier and the
/// clear-fail-locks transaction — while the FIRST message of `victim_type`
/// is silently dropped, and asserts everything still completes and agrees.
void RunLossScenario(ClusterOptions options, MsgType victim_type) {
  auto dropped = std::make_shared<bool>(false);
  options.n_sites = 3;
  options.db_size = 8;
  options.transport.faults.drop_filter =
      [dropped, victim_type](const Message& msg) {
        if (*dropped || msg.type != victim_type) return false;
        *dropped = true;
        return true;
      };
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  EXPECT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0).outcome,
            TxnOutcome::kCommitted);
  cluster.Fail(2);
  // Detection: the victim stays silent through the retry budget, then the
  // coordinator declares it failed and aborts.
  EXPECT_EQ(cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 20)}), 0).outcome,
            TxnOutcome::kAbortedParticipantFailed);
  EXPECT_EQ(cluster.RunTxn(MakeTxn(3, {Operation::Write(1, 21)}), 0).outcome,
            TxnOutcome::kCommitted);
  cluster.Recover(2);
  // A read at the recovered site forces a copier (its copy of item 1 is
  // fail-locked) and afterwards the clear-fail-locks transaction.
  const TxnResult read =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(1)}), 2);
  EXPECT_EQ(read.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(read.reads.size(), 1u);
  EXPECT_EQ(read.reads[0].value, 21);

  EXPECT_TRUE(*dropped) << "scenario never sent a "
                        << MsgTypeName(victim_type);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

class LossSweepTest : public ::testing::TestWithParam<MsgType> {};

TEST_P(LossSweepTest, ReliableChannelRepairsTheDrop) {
  ClusterOptions options;
  options.reliable.enabled = true;  // channel retransmissions do the repair
  RunLossScenario(options, GetParam());
}

TEST_P(LossSweepTest, ProtocolRetriesRepairTheDrop) {
  if (GetParam() == MsgType::kClearFailLocks) {
    // The special transaction has no protocol-level retry: a lost one
    // leaves a residual (conservative, safe) fail-lock and is only
    // repaired by the reliable channel — covered by the test above.
    GTEST_SKIP();
  }
  ClusterOptions options;
  options.site.retry_limit = 3;  // phase re-sends / decision queries repair
  RunLossScenario(options, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    EveryProtocolMessage, LossSweepTest,
    ::testing::Values(MsgType::kPrepare, MsgType::kPrepareAck,
                      MsgType::kCommit, MsgType::kCommitAck,
                      MsgType::kCopyRequest, MsgType::kCopyReply,
                      MsgType::kRecoveryAnnounce, MsgType::kRecoveryInfo,
                      MsgType::kClearFailLocks),
    [](const ::testing::TestParamInfo<MsgType>& info) {
      return std::string(MsgTypeName(info.param));
    });

TEST(DuplicateDeterminismTest, SameSeedArrivalsUnchangedByDuplication) {
  // The duplicate decision stream is separate from the latency jitter's:
  // turning duplication on must not move a single original arrival in a
  // same-seed run (satellite guarantee for A/B experiments).
  auto run = [](double duplicate_probability) {
    SimRuntime sim;
    SimTransportOptions topts;
    topts.latency_jitter = Milliseconds(4);
    topts.jitter_seed = 99;
    topts.faults.seed = 5;
    topts.faults.duplicate_probability = duplicate_probability;
    topts.faults.duplicate_delay = Milliseconds(2);
    SimTransport transport(&sim, topts);

    class TimedRecorder : public MessageHandler {
     public:
      explicit TimedRecorder(SimRuntime* sim) : sim_(sim) {}
      void OnMessage(const Message& msg) override {
        const TxnId txn = msg.As<CommitArgs>().txn;
        if (first_seen.emplace(txn, sim_->now()).second) {
          arrivals.push_back({txn, sim_->now()});
        }
      }
      std::map<TxnId, TimePoint> first_seen;
      std::vector<std::pair<TxnId, TimePoint>> arrivals;

     private:
      SimRuntime* const sim_;
    };
    TimedRecorder recorder(&sim);
    transport.Register(1, &recorder);
    for (TxnId t = 1; t <= 40; ++t) {
      (void)transport.Send(MakeMessage(0, 1, CommitArgs{t}));
    }
    sim.RunUntilIdle();
    return recorder.arrivals;
  };
  const auto without = run(0.0);
  const auto with = run(1.0);
  ASSERT_EQ(without.size(), 40u);
  EXPECT_EQ(without, with) << "duplication perturbed original arrivals";
}

TEST(LossyNetworkAcceptanceTest, PipelinedLoadWithFailureAtTenPercentLoss) {
  // The issue's acceptance bar: concurrency 8, a failure injected and
  // recovered mid-workload, 10% message loss — and not one client timeout,
  // because the reliable channel plus the protocol retry budget absorb
  // every drop before the managing site's patience runs out.
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 32;
  options.max_inflight = 8;
  options.transport.faults.drop_probability = 0.10;
  options.transport.faults.seed = 7;
  options.reliable.enabled = true;
  options.site.retry_limit = 2;
  options.site.ack_timeout = Milliseconds(500);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = 32;
  wopts.max_txn_size = 6;
  wopts.seed = 11;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = 8;
  dopts.measure_txns = 120;
  constexpr SiteId kVictim = 3;
  DriverOptions degraded = dopts;
  degraded.coordinator_for = [](uint64_t index) {
    return static_cast<SiteId>(index % 3);  // keep load off the down site
  };

  Driver healthy(&cluster, &workload, dopts);
  const DriverReport healthy_report = healthy.Run();
  cluster.Fail(kVictim);
  Driver failed(&cluster, &workload, degraded);
  const DriverReport failed_report = failed.Run();
  cluster.Recover(kVictim);
  Driver recovering(&cluster, &workload, dopts);
  const DriverReport recovery_report = recovering.Run();

  EXPECT_EQ(healthy_report.unreachable, 0u);
  EXPECT_EQ(failed_report.unreachable, 0u);
  EXPECT_EQ(recovery_report.unreachable, 0u);
  EXPECT_GT(healthy_report.committed, 0u);
  EXPECT_GT(failed_report.committed, 0u);
  EXPECT_GT(recovery_report.committed, 0u);

  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.unreachable, 0u) << "a client timed out under loss";
  EXPECT_EQ(stats.late_outcomes, 0u);
  EXPECT_GT(stats.messages_dropped, 0u) << "loss injection never engaged";
  EXPECT_GT(stats.channel.retransmits, 0u);
  EXPECT_GT(stats.channel.dup_suppressed, 0u);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

}  // namespace
}  // namespace miniraid

// Fault-injection tests: network partitions (PartitionController), latency
// jitter (in-order delivery must survive), and lose-state (cold restart)
// crashes.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "net/partition.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

TEST(PartitionControllerTest, CrossesOnlyBetweenGroups) {
  PartitionController partition;
  EXPECT_FALSE(partition.Partitioned());
  partition.Split({{0, 1}, {2, 3}});
  EXPECT_TRUE(partition.Crosses(0, 2));
  EXPECT_TRUE(partition.Crosses(3, 1));
  EXPECT_FALSE(partition.Crosses(0, 1));
  EXPECT_FALSE(partition.Crosses(2, 3));
  // Unassigned endpoints (the managing site) reach everyone.
  EXPECT_FALSE(partition.Crosses(0, 4));
  EXPECT_FALSE(partition.Crosses(4, 2));
  partition.Heal();
  EXPECT_FALSE(partition.Crosses(0, 2));
}

TEST(PartitionTest, MinoritySideDetectsMajorityAsFailed) {
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 8;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0, 1}, {2}});
  // Site 2's next coordinated write times out on both peers and announces
  // them failed — to nobody reachable, but its own vector updates.
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 2);
  EXPECT_FALSE(cluster.site(2).session_vector().IsUp(0));
  EXPECT_FALSE(cluster.site(2).session_vector().IsUp(1));
  // The majority side likewise writes 2 off after one timeout.
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 2)}), 0);
  EXPECT_FALSE(cluster.site(0).session_vector().IsUp(2));
  EXPECT_TRUE(cluster.site(0).session_vector().IsUp(1));
}

TEST(PartitionTest, RowaaDivergesUnderPartitionTheDocumentedLimitation) {
  // ROWAA assumes site failures, not partitions: during a split both sides
  // keep accepting writes to "all available copies" and the replicas
  // diverge — exactly why the paper's protocol family needs a partition-
  // free network (or quorum-style protocols; see the baselines).
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0}, {1}});
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(0, 100)}), 0);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(0, 1)}), 1);  // detect
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(0, 200)}), 1);
  partition.Heal();

  // Both sides committed conflicting values for item 0; each side's
  // fail-lock table blames the other, so the oracle that exempts locked
  // copies still "passes" — but the raw values demonstrably diverged.
  EXPECT_EQ(cluster.site(0).db().Read(0)->value, 100);
  EXPECT_EQ(cluster.site(1).db().Read(0)->value, 200);
  EXPECT_TRUE(cluster.site(0).fail_locks().IsSet(0, 1));
  EXPECT_TRUE(cluster.site(1).fail_locks().IsSet(0, 0));
}

TEST(PartitionTest, HealedPartitionRecoversViaControlType1) {
  PartitionController partition;
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 8;
  options.transport.drop_filter = partition.Filter();
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  partition.Split({{0, 1}, {2}});
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(3, 1)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 33)}), 0);
  partition.Heal();
  // Treat the isolated site like a recovering one (it made no conflicting
  // commits — it was never asked to coordinate): crash + type-1 recovery
  // brings it back cleanly.
  cluster.Fail(2);
  cluster.Recover(2);
  EXPECT_TRUE(cluster.site(2).fail_locks().IsSet(3, 2));
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(3)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 33);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(JitterTest, FifoPreservedUnderJitter) {
  SimRuntime sim;
  SimTransportOptions options;
  options.message_latency = Milliseconds(5);
  options.latency_jitter = Milliseconds(20);
  options.jitter_seed = 99;
  SimTransport transport(&sim, options);

  class Recorder : public MessageHandler {
   public:
    void OnMessage(const Message& msg) override {
      order.push_back(msg.As<CommitArgs>().txn);
    }
    std::vector<TxnId> order;
  };
  Recorder recorder;
  transport.Register(1, &recorder);
  for (TxnId t = 1; t <= 50; ++t) {
    ASSERT_TRUE(transport.Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  sim.RunUntilIdle();
  ASSERT_EQ(recorder.order.size(), 50u);
  for (TxnId t = 1; t <= 50; ++t) {
    EXPECT_EQ(recorder.order[t - 1], t) << "reordered under jitter";
  }
}

TEST(JitterTest, ProtocolCorrectUnderJitteredLatency) {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 10;
  options.transport.latency_jitter = Milliseconds(30);
  options.transport.jitter_seed = 7;
  options.check_invariants = true;  // full invariant suite at every step
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 10;
  wopts.max_txn_size = 5;
  wopts.seed = 7;
  UniformWorkload workload(wopts);
  for (int i = 0; i < 40; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  cluster.Fail(1);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(2 * (i % 2)));
  }
  cluster.Recover(1);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

TEST(LoseStateTest, ColdRestartRefreshesEverythingBeforeServing) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 6;
  options.site.lose_state_on_crash = true;
  options.check_invariants = true;  // full invariant suite at every step
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  cluster.Fail(1);
  // Site 1's memory is gone, including the value of item 2 committed
  // before the crash — which no fail-lock at site 0 records.
  EXPECT_EQ(cluster.site(1).db().Read(2)->version, 0u);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(4, 44)}), 0);  // detect
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(4, 45)}), 0);
  cluster.Recover(1);
  // Conservative fail-locking covers every copy, not just item 4.
  EXPECT_EQ(cluster.site(1).OwnFailLockCount(), 6u);
  // Reads at the restarted site go through copier transactions and return
  // the correct pre-crash value.
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(2)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 22);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(LoseStateTest, SessionCounterSurvivesColdRestart) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  options.site.lose_state_on_crash = true;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(1);
  cluster.Recover(1);
  cluster.Fail(1);
  cluster.Recover(1);
  // Two restarts: session 3. A repeated session number would break the
  // type-2 stale-announcement guard.
  EXPECT_EQ(cluster.site(1).session_vector().session(1), 3u);
  EXPECT_EQ(cluster.site(0).session_vector().session(1), 3u);
}

TEST(LoseStateTest, BatchModeDrainsColdRestartQuickly) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 12;
  options.site.lose_state_on_crash = true;
  options.site.batch_copier_threshold = 1.0;  // proactive refresh
  options.site.batch_copier_chunk = 4;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  for (TxnId t = 1; t <= 6; ++t) {
    (void)cluster.RunTxn(
        MakeTxn(t, {Operation::Write(static_cast<ItemId>(t), Value(t))}), 0);
  }
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(7, {Operation::Write(0, 7)}), 0);  // detect
  cluster.Recover(1);
  // Recovery ran to quiescence with batch copiers: no stale copies remain,
  // and the pre-crash values are all back.
  EXPECT_EQ(cluster.site(1).OwnFailLockCount(), 0u);
  for (TxnId t = 1; t <= 6; ++t) {
    EXPECT_EQ(cluster.site(1).db().Read(static_cast<ItemId>(t))->value,
              Value(t));
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

}  // namespace
}  // namespace miniraid

// Regression tests for protocol-level duplicate tolerance: every handler a
// retransmitting peer (or a duplicating transport) can hit twice must be
// idempotent — re-ack where the sender may still be waiting, no-op where
// re-applying would corrupt state. One test per audited gap; each injects
// the duplicate explicitly through the raw transport.

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace miniraid {
namespace {

constexpr SiteId kProbe = 77;  // unregistered endpoint injecting duplicates

ClusterOptions Options(uint32_t n_sites, uint32_t db_size = 10) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  return options;
}

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

/// Captures everything sent to the probe id.
class Probe : public MessageHandler {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  size_t CountOf(MsgType type) const {
    size_t n = 0;
    for (const Message& msg : received) {
      if (msg.type == type) ++n;
    }
    return n;
  }
  std::vector<Message> received;
};

TEST(DuplicateToleranceTest, PrepareAfterCommittedTeardownIsReAcked) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 11)}), 0).outcome,
            TxnOutcome::kCommitted);
  const uint64_t prepares = cluster.site(1).counters().prepares_handled;

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(MakeMessage(
      kProbe, 1, PrepareArgs{1, {ItemWrite{0, 11}}, {}, {0, 1}}));
  cluster.RunUntilIdle();

  // The participation is long torn down and the write applied: the site
  // must re-ack (a retrying coordinator may still be waiting) without
  // re-staging or re-committing anything.
  EXPECT_EQ(probe.CountOf(MsgType::kPrepareAck), 1u);
  EXPECT_EQ(cluster.site(1).counters().prepares_handled, prepares);
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(0)->value, 11);
  EXPECT_EQ(cluster.site(1).db().Read(0)->version, 1u);
}

TEST(DuplicateToleranceTest, PrepareAfterAbortedTeardownIsDropped) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(2);
  // Participant 1 stages the write and acks; participant 2 never answers,
  // so the coordinator aborts and site 1 discards the staging.
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kAbortedParticipantFailed);
  ASSERT_EQ(cluster.site(1).counters().aborts_handled, 1u);
  ASSERT_EQ(cluster.site(1).db().Read(0)->version, 0u);

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(MakeMessage(
      kProbe, 1, PrepareArgs{1, {ItemWrite{0, 1}}, {}, {0, 1, 2}}));
  cluster.RunUntilIdle();

  // Re-staging a finished (aborted) transaction's writes would resurrect
  // it: the duplicate must vanish — no ack, no staging, no commit.
  EXPECT_EQ(probe.CountOf(MsgType::kPrepareAck), 0u);
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(0)->version, 0u);
}

TEST(DuplicateToleranceTest, CommitAfterTeardownReAcksWithoutReapplying) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(3, 33)}), 0).outcome,
            TxnOutcome::kCommitted);
  const uint64_t commits = cluster.site(1).counters().commits_handled;
  ASSERT_EQ(cluster.site(1).db().Read(3)->version, 1u);

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(MakeMessage(kProbe, 1, CommitArgs{1}));
  cluster.RunUntilIdle();

  // The commit already happened: re-ack (the sender's retransmissions
  // never converge otherwise) but never bump the version again.
  EXPECT_EQ(probe.CountOf(MsgType::kCommitAck), 1u);
  EXPECT_EQ(cluster.site(1).counters().commits_handled, commits);
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(3)->version, 1u);
}

TEST(DuplicateToleranceTest, AbortAfterTeardownIsANoOp) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(5, 50)}), 0).outcome,
            TxnOutcome::kCommitted);
  const uint64_t aborts = cluster.site(1).counters().aborts_handled;

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(MakeMessage(kProbe, 1, AbortArgs{1}));
  cluster.RunUntilIdle();

  // A late Abort for a transaction that committed here must not (and
  // cannot) undo it; it is counted and discarded. The committed value
  // survives.
  EXPECT_EQ(cluster.site(1).counters().aborts_handled, aborts);
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(5)->value, 50);
  EXPECT_TRUE(probe.received.empty());
}

TEST(DuplicateToleranceTest, EqualSessionReannounceReServesWithoutSideEffects) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(1);
  cluster.Recover(1);
  ASSERT_EQ(cluster.site(0).session_vector().session(1), 2u);
  ASSERT_TRUE(cluster.site(0).session_vector().IsUp(1));
  const uint64_t served = cluster.site(0).counters().control1_served;

  // The recovered site's original announce was served; a retransmission of
  // the SAME session arrives late. The receiver re-serves its info (the
  // announcer may have lost the reply) but must not mutate its vector or
  // count a second control-1 service.
  (void)cluster.transport().Send(
      MakeMessage(1, 0, RecoveryAnnounceArgs{1, 2}));
  cluster.RunUntilIdle();

  EXPECT_EQ(cluster.site(0).counters().control1_served, served);
  EXPECT_GE(cluster.site(0).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(0).session_vector().session(1), 2u);
  EXPECT_TRUE(cluster.site(0).session_vector().IsUp(1));
  // The re-served RecoveryInfo lands at site 1, which is no longer
  // recovering: it too must treat the stray reply as a duplicate.
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 1u);
  EXPECT_TRUE(cluster.site(1).session_vector().IsUp(1));
}

TEST(DuplicateToleranceTest, StrayRecoveryInfoOutsideRecoveryIsIgnored) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  RecoveryInfoArgs info;
  info.session_vector = {SessionEntryWire{1, SiteStatus::kUp},
                         SessionEntryWire{1, SiteStatus::kUp}};
  info.fail_locks = {FailLockRow{0, 0b11}};  // would fail-lock everything
  (void)cluster.transport().Send(MakeMessage(kProbe, 0, info));
  cluster.RunUntilIdle();

  // No recovery in progress: adopting the table (or even unioning it)
  // would resurrect cleared fail-locks. Counted, dropped.
  EXPECT_GE(cluster.site(0).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(0).OwnFailLockCount(), 0u);
}

TEST(DuplicateToleranceTest, RepeatedTxnRequestRunsTheTransactionOnce) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  const Message request =
      MakeMessage(kProbe, 0, TxnRequestArgs{MakeTxn(
                                 5, {Operation::Write(2, 22)})});
  (void)cluster.transport().Send(request);
  cluster.RunUntilIdle();
  ASSERT_EQ(probe.CountOf(MsgType::kTxnReply), 1u);
  ASSERT_EQ(cluster.site(0).db().Read(2)->version, 5u);  // LWW: version = txn

  // The client (or a duplicating transport) re-sends the same request
  // after the outcome: it must not run again — no second reply, no second
  // coordination.
  (void)cluster.transport().Send(request);
  cluster.RunUntilIdle();
  EXPECT_EQ(probe.CountOf(MsgType::kTxnReply), 1u);
  EXPECT_EQ(cluster.site(0).counters().txns_coordinated, 1u);
  EXPECT_GE(cluster.site(0).counters().duplicate_msgs_ignored, 1u);
  EXPECT_EQ(cluster.site(0).db().Read(2)->version, 5u);
}

TEST(DuplicateToleranceTest, DecisionQueryAnsweredFromOutcomeCache) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kCommitted);

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  // A committed transaction: the coordinator's cache answers Commit.
  (void)cluster.transport().Send(
      MakeMessage(kProbe, 0, DecisionQueryArgs{1}));
  // An unknown transaction: no trace anywhere means presumed abort.
  (void)cluster.transport().Send(
      MakeMessage(kProbe, 0, DecisionQueryArgs{999}));
  cluster.RunUntilIdle();

  EXPECT_EQ(probe.CountOf(MsgType::kCommit), 1u);
  EXPECT_EQ(probe.CountOf(MsgType::kAbort), 1u);
  EXPECT_EQ(cluster.site(0).counters().decision_queries_answered, 1u);
  EXPECT_EQ(cluster.site(0).counters().decisions_presumed_abort, 1u);
}

}  // namespace
}  // namespace miniraid

#include "core/cluster.h"

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "txn/transaction.h"

namespace miniraid {
namespace {

ClusterOptions SmallCluster(uint32_t n_sites = 2, uint32_t db_size = 8) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  return options;
}

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

TEST(SimClusterTest, CommitReplicatesWrites) {
  SimCluster cluster(SmallCluster());
  const TxnSpec txn =
      MakeTxn(1, {Operation::Write(3, 42), Operation::Read(3)});
  const TxnReplyArgs reply = cluster.RunTxn(txn, /*coordinator=*/0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  for (SiteId s = 0; s < 2; ++s) {
    const ItemState state = *cluster.site(s).db().Read(3);
    EXPECT_EQ(state.value, 42) << "site " << s;
    EXPECT_EQ(state.version, 1u) << "site " << s;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SimClusterTest, ReadsObserveLatestCommit) {
  SimCluster cluster(SmallCluster());
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(0, 20)}), 1);
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(0)}), 0);
  ASSERT_EQ(reply.reads.size(), 1u);
  EXPECT_EQ(reply.reads[0].value, 20);
  EXPECT_EQ(reply.reads[0].version, 2u);
}

TEST(SimClusterTest, WritesWhileSiteDownSetFailLocks) {
  SimCluster cluster(SmallCluster());
  cluster.Fail(1);
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 7)}), 0);
  // The first transaction after an undetected failure aborts on the
  // prepare-ack timeout and announces the failure (control type 2).
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed);
  EXPECT_FALSE(cluster.site(0).session_vector().IsUp(1));

  // With the failure known, ROWAA proceeds with the single available copy
  // and fail-locks the down site's copy.
  const TxnReplyArgs reply2 =
      cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 8)}), 0);
  EXPECT_EQ(reply2.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster.site(0).fail_locks().IsSet(2, 1));
  EXPECT_EQ(cluster.FailLockCountFor(1), 1u);
}

TEST(SimClusterTest, RecoveryCollectsFailLocksAndSessionVector) {
  SimCluster cluster(SmallCluster());
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 8)}), 0);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(5, 9)}), 0);
  cluster.Recover(1);

  const Site& recovered = cluster.site(1);
  EXPECT_TRUE(recovered.is_up());
  EXPECT_EQ(recovered.session_vector().session(1), 2u);
  EXPECT_TRUE(recovered.fail_locks().IsSet(2, 1));
  EXPECT_TRUE(recovered.fail_locks().IsSet(5, 1));
  EXPECT_EQ(recovered.OwnFailLockCount(), 2u);
  EXPECT_TRUE(recovered.InRecoveryPeriod());
  // Both sites see site 1 up in session 2.
  EXPECT_TRUE(cluster.site(0).session_vector().IsUp(1));
  EXPECT_EQ(cluster.site(0).session_vector().session(1), 2u);
}

TEST(SimClusterTest, CopierTransactionRefreshesFailLockedRead) {
  SimCluster cluster(SmallCluster());
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 0);
  cluster.Recover(1);
  ASSERT_TRUE(cluster.site(1).fail_locks().IsSet(2, 1));

  // A read of the fail-locked copy at the recovering coordinator runs a
  // copier transaction and returns the up-to-date value.
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(2)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.copier_count, 1u);
  ASSERT_EQ(reply.reads.size(), 1u);
  EXPECT_EQ(reply.reads[0].value, 88);
  // The fail-lock is cleared locally and at the other site (the special
  // transaction).
  EXPECT_FALSE(cluster.site(1).fail_locks().IsSet(2, 1));
  EXPECT_FALSE(cluster.site(0).fail_locks().IsSet(2, 1));
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SimClusterTest, WriteRefreshesFailLockedCopyEverywhere) {
  SimCluster cluster(SmallCluster());
  cluster.Fail(1);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 0);
  cluster.Recover(1);

  // A write to the fail-locked item refreshes the recovered copy without a
  // copier: fail-lock maintenance at commit clears the bit at every site.
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Write(2, 99)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.copier_count, 0u);
  EXPECT_FALSE(cluster.site(0).fail_locks().IsSet(2, 1));
  EXPECT_FALSE(cluster.site(1).fail_locks().IsSet(2, 1));
  EXPECT_EQ(cluster.site(1).db().Read(2)->value, 99);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SimClusterTest, AbortWhenNoUpToDateCopyReachable) {
  SimCluster cluster(SmallCluster());
  cluster.Fail(0);
  (void)cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 1);  // abort
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 1);
  cluster.Recover(0);
  cluster.Fail(1);  // the only up-to-date copy of item 2 goes down

  // Site 0 must abort: its copy of 2 is fail-locked and no operational
  // site holds a fresh one (Experiment 3 scenario 1's abort cause).
  // The first attempt may abort on the undetected failure of site 1.
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Read(2)}), 0);
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(4, {Operation::Read(2)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedCopierFailed);
}

TEST(SimClusterTest, DownCoordinatorIsUnreachable) {
  ClusterOptions options = SmallCluster();
  options.managing.client_timeout = Seconds(2);
  SimCluster cluster(options);
  cluster.Fail(0);
  const TxnReplyArgs reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(1, 5)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCoordinatorUnreachable);
}

TEST(SimClusterTest, SuccessiveFailuresKeepConsistency) {
  SimCluster cluster(SmallCluster(4, 16));
  UniformWorkloadOptions wopts;
  wopts.db_size = 16;
  wopts.max_txn_size = 5;
  wopts.seed = 7;
  UniformWorkload workload(wopts);

  for (SiteId victim = 0; victim < 4; ++victim) {
    cluster.Fail(victim);
    for (int i = 0; i < 10; ++i) {
      (void)cluster.RunTxn(workload.Next(), (victim + 1) % 4);
    }
    cluster.Recover(victim);
  }
  for (int i = 0; i < 30; ++i) {
    (void)cluster.RunTxn(workload.Next(), i % 4);
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

}  // namespace
}  // namespace miniraid

// Protocol integration tests written once against the unified Cluster
// interface and run on both the deterministic simulator and the in-process
// real runtime (TCP is exercised separately in real_cluster_test.cc).
// Everything is asserted through MakeCluster + SnapshotSites/WaitUntil, so
// the suite is a living check that the abstract surface is sufficient.

#include "core/cluster.h"

#include <gtest/gtest.h>

#include <memory>

#include "txn/transaction.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

class ClusterApiTest : public ::testing::TestWithParam<ClusterBackend> {
 protected:
  std::unique_ptr<Cluster> Make(uint32_t n_sites = 2, uint32_t db_size = 8) {
    ClusterOptions options;
    options.backend = GetParam();
    options.n_sites = n_sites;
    options.db_size = db_size;
    // Fast failure detection / client timeout keep the real backend quick;
    // virtual time makes the values irrelevant under sim.
    options.site.ack_timeout = Milliseconds(250);
    options.managing.client_timeout = Milliseconds(750);
    // The simulator has quiescent points after every RunTxn — enforce the
    // full invariant suite there.
    options.check_invariants = GetParam() == ClusterBackend::kSim;
    auto cluster = MakeCluster(options);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return std::move(*cluster);
  }

  static ItemState ReadItem(Cluster& cluster, SiteId site, ItemId item) {
    const std::vector<SiteSnapshot> snaps = cluster.SnapshotSites();
    EXPECT_TRUE(snaps[site].db[item].has_value());
    return snaps[site].db[item].value_or(ItemState{});
  }
};

TEST_P(ClusterApiTest, CommitReplicatesWrites) {
  auto cluster = Make();
  const TxnSpec txn =
      MakeTxn(1, {Operation::Write(3, 42), Operation::Read(3)});
  const TxnResult reply = cluster->RunTxn(txn, /*coordinator=*/0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  for (SiteId s = 0; s < 2; ++s) {
    const ItemState state = ReadItem(*cluster, s, 3);
    EXPECT_EQ(state.value, 42) << "site " << s;
    EXPECT_EQ(state.version, 1u) << "site " << s;
  }
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(ClusterApiTest, ReadsObserveLatestCommit) {
  auto cluster = Make();
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(0, 10)}), 0);
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(0, 20)}), 1);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(3, {Operation::Read(0)}), 0);
  ASSERT_EQ(reply.reads.size(), 1u);
  EXPECT_EQ(reply.reads[0].value, 20);
  EXPECT_EQ(reply.reads[0].version, 2u);
}

TEST_P(ClusterApiTest, SubmitTxnHandleResolvesToReply) {
  auto cluster = Make();
  TxnHandle handle =
      cluster->SubmitTxn(MakeTxn(1, {Operation::Write(4, 7)}), 0);
  ASSERT_TRUE(handle.valid());
  const TxnResult& reply = handle.Get();
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(ReadItem(*cluster, 1, 4).value, 7);
}

TEST_P(ClusterApiTest, PipelinedSubmissionsAllComplete) {
  auto cluster = Make(3, 12);
  std::vector<TxnHandle> handles;
  for (TxnId t = 1; t <= 12; ++t) {
    handles.push_back(cluster->SubmitTxn(
        MakeTxn(t, {Operation::Write(ItemId(t % 12), Value(t))}),
        SiteId(t % 3)));
  }
  uint64_t committed = 0;
  for (TxnHandle& handle : handles) {
    if (handle.Get().outcome == TxnOutcome::kCommitted) ++committed;
  }
  EXPECT_EQ(committed, 12u);
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.committed, 12u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(ClusterApiTest, SubmissionWindowBackpressuresButCompletesAll) {
  // 40 submissions through a window of 4: never more than 4 in flight,
  // everything still commits exactly once. Well under the coordinator's
  // queue bound, so no submission can be dropped.
  ClusterOptions options;
  options.backend = GetParam();
  options.n_sites = 2;
  options.db_size = 8;
  options.max_inflight = 4;
  options.site.ack_timeout = Milliseconds(250);
  auto made = MakeCluster(options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto& cluster = *made;

  std::vector<TxnHandle> handles;
  for (TxnId t = 1; t <= 40; ++t) {
    handles.push_back(cluster->SubmitTxn(
        MakeTxn(t, {Operation::Write(ItemId(t % 8), Value(t))}), 0));
  }
  for (TxnHandle& handle : handles) {
    EXPECT_EQ(handle.Get().outcome, TxnOutcome::kCommitted);
  }
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.committed, 40u);
  EXPECT_LE(stats.max_inflight_seen, 4u);
  EXPECT_GE(stats.backlogged, 36u - 4u);  // most submissions had to queue
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(ClusterApiTest, WritesWhileSiteDownSetFailLocks) {
  auto cluster = Make();
  cluster->Fail(1);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(1, {Operation::Write(2, 7)}), 0);
  // The first transaction after an undetected failure aborts on the
  // prepare-ack timeout and announces the failure (control type 2).
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed);
  EXPECT_FALSE(cluster->SnapshotSites()[0].sessions.IsUp(1));

  // With the failure known, ROWAA proceeds with the single available copy
  // and fail-locks the down site's copy.
  const TxnResult reply2 =
      cluster->RunTxn(MakeTxn(2, {Operation::Write(2, 8)}), 0);
  EXPECT_EQ(reply2.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster->SnapshotSites()[0].fail_locks.IsSet(2, 1));
  EXPECT_EQ(cluster->FailLockCountFor(1), 1u);
}

TEST_P(ClusterApiTest, RecoveryCollectsFailLocksAndSessionVector) {
  auto cluster = Make();
  cluster->Fail(1);
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(2, 8)}), 0);
  (void)cluster->RunTxn(MakeTxn(3, {Operation::Write(5, 9)}), 0);
  cluster->Recover(1);
  ASSERT_TRUE(cluster->WaitUntil(1, [](const Site& site) {
    return site.is_up() && site.OwnFailLockCount() >= 2;
  }));

  const std::vector<SiteSnapshot> snaps = cluster->SnapshotSites();
  const SiteSnapshot& recovered = snaps[1];
  EXPECT_EQ(recovered.status, SiteStatus::kUp);
  EXPECT_EQ(recovered.sessions.session(1), 2u);
  EXPECT_TRUE(recovered.fail_locks.IsSet(2, 1));
  EXPECT_TRUE(recovered.fail_locks.IsSet(5, 1));
  EXPECT_EQ(recovered.fail_locks.CountForSite(1), 2u);
  // Both sites see site 1 up in session 2.
  EXPECT_TRUE(snaps[0].sessions.IsUp(1));
  EXPECT_EQ(snaps[0].sessions.session(1), 2u);
}

TEST_P(ClusterApiTest, CopierTransactionRefreshesFailLockedRead) {
  auto cluster = Make();
  cluster->Fail(1);
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 0);
  cluster->Recover(1);
  ASSERT_TRUE(cluster->WaitUntil(
      1, [](const Site& site) { return site.fail_locks().IsSet(2, 1); }));

  // A read of the fail-locked copy at the recovering coordinator runs a
  // copier transaction and returns the up-to-date value.
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(3, {Operation::Read(2)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.copier_count, 1u);
  ASSERT_EQ(reply.reads.size(), 1u);
  EXPECT_EQ(reply.reads[0].value, 88);
  // The fail-lock is cleared locally and at the other site (the special
  // transaction).
  const std::vector<SiteSnapshot> snaps = cluster->SnapshotSites();
  EXPECT_FALSE(snaps[1].fail_locks.IsSet(2, 1));
  EXPECT_FALSE(snaps[0].fail_locks.IsSet(2, 1));
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(ClusterApiTest, WriteRefreshesFailLockedCopyEverywhere) {
  auto cluster = Make();
  cluster->Fail(1);
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 0);  // abort
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 0);
  cluster->Recover(1);
  ASSERT_TRUE(cluster->WaitUntil(
      1, [](const Site& site) { return site.fail_locks().IsSet(2, 1); }));

  // A write to the fail-locked item refreshes the recovered copy without a
  // copier: fail-lock maintenance at commit clears the bit at every site.
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(3, {Operation::Write(2, 99)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.copier_count, 0u);
  const std::vector<SiteSnapshot> snaps = cluster->SnapshotSites();
  EXPECT_FALSE(snaps[0].fail_locks.IsSet(2, 1));
  EXPECT_FALSE(snaps[1].fail_locks.IsSet(2, 1));
  EXPECT_EQ(snaps[1].db[2]->value, 99);
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok());
}

TEST_P(ClusterApiTest, AbortWhenNoUpToDateCopyReachable) {
  auto cluster = Make();
  cluster->Fail(0);
  (void)cluster->RunTxn(MakeTxn(1, {Operation::Write(2, 8)}), 1);  // abort
  (void)cluster->RunTxn(MakeTxn(2, {Operation::Write(2, 88)}), 1);
  cluster->Recover(0);
  ASSERT_TRUE(cluster->WaitUntil(
      0, [](const Site& site) { return site.fail_locks().IsSet(2, 0); }));
  cluster->Fail(1);  // the only up-to-date copy of item 2 goes down

  // Site 0 must abort: its copy of 2 is fail-locked and no operational
  // site holds a fresh one (Experiment 3 scenario 1's abort cause).
  // The first attempt may abort on the undetected failure of site 1.
  (void)cluster->RunTxn(MakeTxn(3, {Operation::Read(2)}), 0);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(4, {Operation::Read(2)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kAbortedCopierFailed);
}

TEST_P(ClusterApiTest, DownCoordinatorIsUnreachable) {
  auto cluster = Make();
  cluster->Fail(0);
  const TxnResult reply =
      cluster->RunTxn(MakeTxn(1, {Operation::Write(1, 5)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCoordinatorUnreachable);
  EXPECT_EQ(cluster->Stats().unreachable, 1u);
}

TEST_P(ClusterApiTest, UpSitesTracksFailuresAndRecoveries) {
  auto cluster = Make(3, 8);
  EXPECT_EQ(cluster->UpSites(), (std::vector<SiteId>{0, 1, 2}));
  cluster->Fail(1);
  EXPECT_EQ(cluster->UpSites(), (std::vector<SiteId>{0, 2}));
  cluster->Recover(1);
  ASSERT_TRUE(cluster->WaitUntil(
      1, [](const Site& site) { return site.is_up(); }));
  EXPECT_EQ(cluster->UpSites(), (std::vector<SiteId>{0, 1, 2}));
}

TEST_P(ClusterApiTest, SuccessiveFailuresKeepConsistency) {
  auto cluster = Make(4, 16);
  UniformWorkloadOptions wopts;
  wopts.db_size = 16;
  wopts.max_txn_size = 5;
  wopts.seed = 7;
  UniformWorkload workload(wopts);

  for (SiteId victim = 0; victim < 4; ++victim) {
    cluster->Fail(victim);
    for (int i = 0; i < 10; ++i) {
      (void)cluster->RunTxn(workload.Next(), (victim + 1) % 4);
    }
    cluster->Recover(victim);
  }
  for (int i = 0; i < 30; ++i) {
    (void)cluster->RunTxn(workload.Next(), i % 4);
  }
  EXPECT_TRUE(cluster->CheckReplicaAgreement().ok())
      << cluster->CheckReplicaAgreement().ToString();
  EXPECT_TRUE(cluster->CheckInvariants().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ClusterApiTest,
    ::testing::Values(ClusterBackend::kSim, ClusterBackend::kInProc),
    [](const ::testing::TestParamInfo<ClusterBackend>& info) {
      return std::string(ClusterBackendName(info.param));
    });

}  // namespace
}  // namespace miniraid

#include "msg/message.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace miniraid {
namespace {

/// Round-trips a message through the wire codec and checks full equality.
void ExpectRoundTrip(const Message& msg) {
  const std::vector<uint8_t> wire = EncodeMessage(msg);
  const Result<Message> decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg) << msg.ToString();
}

TEST(MessageTest, TypeMatchesPayloadAlternative) {
  EXPECT_EQ(MakeMessage(0, 1, PrepareArgs{}).type, MsgType::kPrepare);
  EXPECT_EQ(MakeMessage(0, 1, TxnResult{}).type, MsgType::kTxnReply);
  EXPECT_EQ(MakeMessage(0, 1, ShutdownArgs{}).type, MsgType::kShutdown);
  EXPECT_EQ(MakeMessage(0, 1, RecoveryInfoArgs{}).type,
            MsgType::kRecoveryInfo);
}

TEST(MessageTest, RoundTripTxnRequest) {
  TxnRequestArgs args;
  args.txn.id = 42;
  args.txn.ops = {Operation::Read(3), Operation::Write(5, -77),
                  Operation::Read(5)};
  ExpectRoundTrip(MakeMessage(4, 0, std::move(args)));
}

TEST(MessageTest, RoundTripTxnReply) {
  TxnResult args;
  args.txn = 42;
  args.outcome = TxnOutcome::kAbortedCopierFailed;
  args.copier_count = 3;
  args.reads = {ItemCopy{1, 10, 2}, ItemCopy{7, -4, 99}};
  ExpectRoundTrip(MakeMessage(0, 4, std::move(args)));
}

TEST(MessageTest, RoundTripTwoPhaseCommitMessages) {
  PrepareArgs prepare;
  prepare.txn = 7;
  prepare.writes = {ItemWrite{0, 1}, ItemWrite{49, -9}};
  prepare.session_vector = {SessionEntryWire{1, SiteStatus::kUp},
                            SessionEntryWire{4, SiteStatus::kDown}};
  prepare.participants = {0, 1};
  ExpectRoundTrip(MakeMessage(0, 1, std::move(prepare)));
  ExpectRoundTrip(MakeMessage(1, 0, PrepareAckArgs{7, true, {}}));
  // A session-vector veto: refused, with the participant's vector riding
  // back for the coordinator to merge.
  PrepareAckArgs veto{7, /*accepted=*/false,
                      {SessionEntryWire{2, SiteStatus::kUp}}};
  ExpectRoundTrip(MakeMessage(1, 0, std::move(veto)));
  ExpectRoundTrip(MakeMessage(0, 1, CommitArgs{7}));
  ExpectRoundTrip(MakeMessage(1, 0, CommitAckArgs{7}));
  ExpectRoundTrip(MakeMessage(0, 1, AbortArgs{7}));
}

TEST(MessageTest, RoundTripCopierMessages) {
  CopyRequestArgs request;
  request.txn = 9;
  request.items = {4, 8, 15, 16, 23, 42};
  ExpectRoundTrip(MakeMessage(2, 0, std::move(request)));

  CopyReplyArgs reply;
  reply.txn = 9;
  reply.copies = {ItemCopy{4, 400, 12}, ItemCopy{8, 800, 13}};
  ExpectRoundTrip(MakeMessage(0, 2, std::move(reply)));

  ClearFailLocksArgs clear;
  clear.txn = 9;
  clear.refreshed_site = 2;
  clear.items = {4, 8};
  ExpectRoundTrip(MakeMessage(2, 1, std::move(clear)));
  ExpectRoundTrip(MakeMessage(1, 2, ClearFailLocksAckArgs{9}));
}

TEST(MessageTest, RoundTripControlMessages) {
  ExpectRoundTrip(MakeMessage(3, 0, RecoveryAnnounceArgs{3, 17}));

  RecoveryInfoArgs info;
  info.session_vector = {SessionEntryWire{1, SiteStatus::kUp},
                         SessionEntryWire{4, SiteStatus::kDown},
                         SessionEntryWire{2, SiteStatus::kWaitingToRecover},
                         SessionEntryWire{9, SiteStatus::kTerminating}};
  info.fail_locks = {FailLockRow{0, 0b0101}, FailLockRow{49, 0b1000}};
  ExpectRoundTrip(MakeMessage(0, 3, std::move(info)));

  FailureAnnounceArgs failure;
  failure.failed_sites = {FailedSiteEntry{1, 4}, FailedSiteEntry{2, 1}};
  ExpectRoundTrip(MakeMessage(0, 3, std::move(failure)));
  ExpectRoundTrip(MakeMessage(3, 0, FailureAckArgs{}));

  CopyCreateArgs create;
  create.backup_site = 2;
  create.copies = {ItemCopy{11, 5, 3}};
  ExpectRoundTrip(MakeMessage(1, 2, std::move(create)));
  ExpectRoundTrip(MakeMessage(2, 1, CopyCreateAckArgs{}));
}

TEST(MessageTest, RoundTripControlPlane) {
  ExpectRoundTrip(MakeMessage(4, 1, FailSiteArgs{}));
  ExpectRoundTrip(MakeMessage(4, 1, RecoverSiteArgs{}));
  ExpectRoundTrip(MakeMessage(4, 1, ShutdownArgs{}));
}

TEST(MessageTest, EmptyVectorsRoundTrip) {
  ExpectRoundTrip(MakeMessage(0, 1, PrepareArgs{1, {}, {}, {}}));
  ExpectRoundTrip(MakeMessage(0, 1, CopyReplyArgs{1, {}}));
  ExpectRoundTrip(MakeMessage(0, 1, RecoveryInfoArgs{{}, {}}));
}

TEST(MessageTest, UnknownTypeByteRejected) {
  Message msg = MakeMessage(0, 1, CommitArgs{5});
  std::vector<uint8_t> wire = EncodeMessage(msg);
  wire[0] = 250;  // no such MsgType
  EXPECT_EQ(DecodeMessage(wire).status().code(), StatusCode::kCorruption);
}

TEST(MessageTest, TrailingGarbageRejected) {
  std::vector<uint8_t> wire = EncodeMessage(MakeMessage(0, 1, CommitArgs{5}));
  wire.push_back(0x00);
  EXPECT_EQ(DecodeMessage(wire).status().code(), StatusCode::kCorruption);
}

TEST(MessageTest, BadEnumValuesRejected) {
  // Corrupt the operation kind inside a TxnRequest.
  TxnRequestArgs args;
  args.txn.id = 1;
  args.txn.ops = {Operation::Read(0)};
  std::vector<uint8_t> wire = EncodeMessage(MakeMessage(4, 0, args));
  // Layout: type(1) from(4) to(4) seq(varint=1) ack(varint=1) txn id(8)
  //         count(varint=1) kind(1) ...
  wire[19] = 9;  // invalid Operation::Kind
  EXPECT_EQ(DecodeMessage(wire).status().code(), StatusCode::kCorruption);
}

TEST(MessageTest, RoundTripBatchMessages) {
  BatchPrepareArgs prepare;
  prepare.batch = 9;
  prepare.session_vector = {SessionEntryWire{2, SiteStatus::kUp},
                            SessionEntryWire{1, SiteStatus::kDown}};
  prepare.participants = {0, 1, 2};
  prepare.members = {BatchMember{7, {ItemWrite{3, 9}, ItemWrite{1, 4}}},
                     BatchMember{8, {ItemWrite{0, 2}}}};
  ExpectRoundTrip(MakeMessage(0, 1, std::move(prepare)));

  ExpectRoundTrip(MakeMessage(1, 0, BatchPrepareAckArgs{9, true, {}, {8}}));
  BatchPrepareAckArgs veto;
  veto.batch = 9;
  veto.accepted = false;
  veto.session_vector = {SessionEntryWire{3, SiteStatus::kUp}};
  ExpectRoundTrip(MakeMessage(1, 0, std::move(veto)));

  ExpectRoundTrip(MakeMessage(0, 1, BatchCommitArgs{9, {7}, {8}}));
  ExpectRoundTrip(MakeMessage(1, 0, BatchCommitAckArgs{9}));
}

TEST(MessageTest, EmptyBatchVectorsRoundTrip) {
  // Degenerate but wire-legal shapes: a member with no writes, an
  // abort-only commit frame (the whole-batch-abort notification), an ack
  // with nothing refused.
  ExpectRoundTrip(
      MakeMessage(0, 1, BatchPrepareArgs{1, {}, {}, {BatchMember{5, {}}}}));
  ExpectRoundTrip(MakeMessage(0, 1, BatchCommitArgs{1, {}, {5, 6}}));
  ExpectRoundTrip(MakeMessage(1, 0, BatchPrepareAckArgs{1, true, {}, {}}));
}

TEST(MessageTest, EveryTruncationFailsCleanly) {
  // Property: no prefix of a valid message decodes successfully, and none
  // crashes. Exercises bounds checks in every payload decoder.
  std::vector<Message> corpus;
  corpus.push_back(MakeMessage(
      0, 1,
      PrepareArgs{7,
                  {ItemWrite{3, 9}},
                  {SessionEntryWire{2, SiteStatus::kUp}},
                  {0, 1, 2}}));
  corpus.push_back(
      MakeMessage(0, 1, CopyReplyArgs{7, {ItemCopy{1, 2, 3}}}));
  RecoveryInfoArgs info;
  info.session_vector = {SessionEntryWire{1, SiteStatus::kUp}};
  info.fail_locks = {FailLockRow{5, 3}};
  corpus.push_back(MakeMessage(0, 1, std::move(info)));
  TxnRequestArgs txn;
  txn.txn.id = 2;
  txn.txn.ops = {Operation::Write(1, 2)};
  corpus.push_back(MakeMessage(4, 0, std::move(txn)));
  BatchPrepareArgs batch;
  batch.batch = 7;
  batch.session_vector = {SessionEntryWire{2, SiteStatus::kUp}};
  batch.participants = {0, 1};
  batch.members = {BatchMember{3, {ItemWrite{1, 9}}}, BatchMember{4, {}}};
  corpus.push_back(MakeMessage(0, 1, std::move(batch)));
  corpus.push_back(MakeMessage(0, 1, BatchCommitArgs{7, {3}, {4}}));

  for (const Message& msg : corpus) {
    const std::vector<uint8_t> wire = EncodeMessage(msg);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      const Result<Message> decoded = DecodeMessage(wire.data(), cut);
      EXPECT_FALSE(decoded.ok()) << msg.ToString() << " cut=" << cut;
    }
  }
}

TEST(MessageTest, RandomBytesNeverCrashDecoder) {
  Rng rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (uint8_t& byte : junk) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    // Must return (either outcome), never crash or hang.
    (void)DecodeMessage(junk);
  }
}

TEST(MessageTest, MsgTypeNamesAreUnique) {
  std::set<std::string_view> names;
  for (int t = 0; t <= static_cast<int>(MsgType::kBatchCommitAck); ++t) {
    names.insert(MsgTypeName(static_cast<MsgType>(t)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(MsgType::kBatchCommitAck) + 1);
}

TEST(MessageTest, ChannelSequenceNumbersRoundTrip) {
  // The reliable channel stamps seq/ack on every frame; both must survive
  // the codec, including multi-byte varint values.
  Message msg = MakeMessage(0, 1, CommitArgs{5});
  msg.seq = 300;     // two varint bytes
  msg.ack = 70000;   // three varint bytes
  ExpectRoundTrip(msg);
  ExpectRoundTrip(MakeMessage(1, 0, ChannelAckArgs{}));
  ExpectRoundTrip(MakeMessage(0, 2, DecisionQueryArgs{42}));
}

}  // namespace
}  // namespace miniraid

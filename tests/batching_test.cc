// Group commit (BatchingOptions) end to end: concurrent coordinations that
// share a participant set drain into one BatchPrepare/BatchCommit round,
// a batch of one degrades to the singleton wire exchange, coalesced
// fail-lock maintenance writes the same bits the singleton path would, a
// refused member aborts alone (its batch-mates commit), and the batch
// handlers tolerate duplicates / answer decision queries like their
// singleton counterparts.

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace miniraid {
namespace {

constexpr SiteId kProbe = 77;  // unregistered endpoint injecting messages

ClusterOptions Options(uint32_t n_sites, uint32_t db_size = 12) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  options.site.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
  options.site.batching.max_batch = 4;
  // Generous linger (virtual time is free) so members submitted together
  // deterministically coalesce regardless of transport latency.
  options.site.batching.batch_linger = Milliseconds(50);
  return options;
}

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

std::vector<TxnResult> RunConcurrently(
    SimCluster& cluster,
    const std::vector<std::pair<TxnSpec, SiteId>>& batch) {
  std::vector<std::optional<TxnResult>> slots(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    cluster.managing().Submit(
        batch[i].first, batch[i].second,
        [&slots, i](const TxnResult& reply) { slots[i] = reply; });
  }
  cluster.RunUntilIdle();
  std::vector<TxnResult> replies;
  for (auto& slot : slots) {
    EXPECT_TRUE(slot.has_value()) << "missing reply";
    replies.push_back(slot.value_or(TxnResult{}));
  }
  return replies;
}

/// Captures everything sent to the probe id.
class Probe : public MessageHandler {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  size_t CountOf(MsgType type) const {
    size_t n = 0;
    for (const Message& msg : received) {
      if (msg.type == type) ++n;
    }
    return n;
  }
  std::vector<Message> received;
};

TEST(BatchingTest, SharedParticipantSetDrainsInOneBatchRound) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  // Disjoint write sets, same coordinator: under full replication both
  // coordinations pin the identical participant set and coalesce.
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                {MakeTxn(2, {Operation::Write(1, 20)}), 0}});
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  const SiteCounters& coord = cluster.site(0).counters();
  EXPECT_EQ(coord.batch_rounds_coordinated, 1u);
  EXPECT_EQ(coord.batch_members_coordinated, 2u);
  EXPECT_EQ(coord.txns_committed, 2u);
  // One BatchPrepare frame per participant carrying both members (each
  // staged member still counts under prepares_handled).
  for (SiteId s = 1; s <= 2; ++s) {
    EXPECT_EQ(cluster.site(s).counters().batch_prepares_handled, 1u)
        << "site " << s;
    EXPECT_EQ(cluster.site(s).counters().prepares_handled, 2u) << "site " << s;
    EXPECT_EQ(cluster.site(s).db().Read(0)->value, 10);
    EXPECT_EQ(cluster.site(s).db().Read(1)->value, 20);
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(BatchingTest, BatchingOffByDefaultEvenUnderLocking) {
  ClusterOptions options = Options(3);
  options.site.batching = BatchingOptions{};  // max_batch = 1: disabled
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                {MakeTxn(2, {Operation::Write(1, 20)}), 0}});
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  EXPECT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 0u);
  for (SiteId s = 1; s <= 2; ++s) {
    EXPECT_EQ(cluster.site(s).counters().batch_prepares_handled, 0u);
    EXPECT_EQ(cluster.site(s).counters().prepares_handled, 2u) << "site " << s;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(BatchingTest, BatchOfOneDegradesToTheSingletonExchange) {
  // A lone ready coordination must leave no trace of batching on the wire:
  // the forming batch of one flushes through the exact singleton send path
  // (same kPrepare frame bytes), so participants count a plain prepare.
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(3, 30)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 0u);
  EXPECT_EQ(cluster.site(0).counters().batch_members_coordinated, 0u);
  for (SiteId s = 1; s <= 2; ++s) {
    EXPECT_EQ(cluster.site(s).counters().batch_prepares_handled, 0u);
    EXPECT_EQ(cluster.site(s).counters().prepares_handled, 1u) << "site " << s;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(BatchingTest, CoalescedMaintenanceWritesTheSingletonFailLocks) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  // Fail site 2 and let a throwaway transaction detect and announce it.
  cluster.Fail(2);
  ASSERT_EQ(cluster.RunTxn(MakeTxn(1, {Operation::Write(0, 1)}), 0).outcome,
            TxnOutcome::kAbortedParticipantFailed);

  // A batched pair commits at {0, 1}; the coalesced maintenance must set
  // the down site's bit for BOTH written items at both participants —
  // exactly what two singleton maintenance passes would have written.
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(2, {Operation::Write(5, 50)}), 0},
                {MakeTxn(3, {Operation::Write(6, 60)}), 0}});
  for (const TxnResult& reply : replies) {
    EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  }
  EXPECT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 1u);
  for (SiteId viewer : {0u, 1u}) {
    const FailLockTable& table = cluster.site(viewer).fail_locks();
    EXPECT_TRUE(table.IsSet(5, 2)) << "viewer " << viewer;
    EXPECT_TRUE(table.IsSet(6, 2)) << "viewer " << viewer;
    EXPECT_FALSE(table.IsSet(5, 0));
    EXPECT_FALSE(table.IsSet(6, 1));
  }

  // Recovery + copier repair converge the tables, as after singletons.
  cluster.Recover(2);
  EXPECT_EQ(cluster.RunTxn(MakeTxn(4, {Operation::Read(5), Operation::Read(6)}),
                           2)
                .outcome,
            TxnOutcome::kCommitted);
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_FALSE(cluster.site(s).fail_locks().IsSet(5, 2)) << "site " << s;
    EXPECT_FALSE(cluster.site(s).fail_locks().IsSet(6, 2)) << "site " << s;
  }
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(BatchingTest, RefusedMemberAbortsAloneBatchMatesCommit) {
  // Contention: an older writer from another coordinator holds item 1
  // while a batch {txn on item 0, txn on item 1} forms at coordinator 0.
  // Whatever interleaving the simulator produces, the uncontended member
  // (item 0) must always commit — a batch-mate's wait-die refusal aborts
  // only the refused member, never the whole batch.
  for (uint32_t round = 0; round < 8; ++round) {
    auto cluster_owner = MakeSimCluster(Options(3));
    SimCluster& cluster = *cluster_owner;
    const TxnId base = 10 * (round + 1);
    // Ids: the contending writer is OLDER (smaller id) than the batch
    // members, so under wait-die the batch member requesting item 1 is the
    // one refused when they collide.
    const auto replies = RunConcurrently(
        cluster, {{MakeTxn(base + 1, {Operation::Write(1, 100)}), 1},
                  {MakeTxn(base + 2, {Operation::Write(0, 200)}), 0},
                  {MakeTxn(base + 3, {Operation::Write(1, 300)}), 0}});
    EXPECT_EQ(replies[1].outcome, TxnOutcome::kCommitted)
        << "round " << round << ": uncontended batch member must commit";
    for (const TxnResult& reply : replies) {
      EXPECT_TRUE(reply.outcome == TxnOutcome::kCommitted ||
                  reply.outcome == TxnOutcome::kAbortedLockConflict)
          << "round " << round;
    }
    EXPECT_TRUE(cluster.CheckReplicaAgreement().ok()) << "round " << round;
  }
}

TEST(BatchingTest, DuplicateBatchPrepareAfterCommitReAcksFromOutcomeCache) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  const auto replies = RunConcurrently(
      cluster, {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                {MakeTxn(2, {Operation::Write(1, 20)}), 0}});
  ASSERT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 1u);
  const uint64_t staged = cluster.site(1).counters().batch_prepares_handled;

  // Retransmit the whole batch from a probe: every member is in the
  // participant's recent-outcome cache as committed, so the site must ack
  // acceptance without re-staging anything or touching the database.
  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  BatchPrepareArgs dup;
  dup.batch = 1;
  dup.participants = {0, 1, 2};
  dup.members = {BatchMember{1, {ItemWrite{0, 10}}},
                 BatchMember{2, {ItemWrite{1, 20}}}};
  (void)cluster.transport().Send(MakeMessage(kProbe, 1, std::move(dup)));
  cluster.RunUntilIdle();

  ASSERT_EQ(probe.CountOf(MsgType::kBatchPrepareAck), 1u);
  const auto& ack = probe.received.front().As<BatchPrepareAckArgs>();
  EXPECT_TRUE(ack.accepted);
  EXPECT_TRUE(ack.refused.empty());
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 2u);
  EXPECT_EQ(cluster.site(1).db().Read(0)->version, 1u);  // LWW: version = txn
  EXPECT_EQ(cluster.site(1).db().Read(1)->version, 2u);
  // batch_prepares_handled counts frames, and the duplicate frame still
  // arrived; but no member was staged anew.
  EXPECT_EQ(cluster.site(1).counters().batch_prepares_handled, staged + 1);
}

TEST(BatchingTest, DuplicateBatchCommitAfterTeardownReAcksWithoutReapplying) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  (void)RunConcurrently(cluster,
                        {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                         {MakeTxn(2, {Operation::Write(1, 20)}), 0}});
  ASSERT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 1u);
  const uint64_t committed = cluster.site(1).counters().commits_handled;

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(
      MakeMessage(kProbe, 1, BatchCommitArgs{1, {1, 2}, {}}));
  cluster.RunUntilIdle();

  // Both members are cached as committed: the site re-acks the whole batch
  // (the retrying coordinator may still be waiting) without re-applying.
  EXPECT_EQ(probe.CountOf(MsgType::kBatchCommitAck), 1u);
  EXPECT_EQ(cluster.site(1).counters().commits_handled, committed);
  EXPECT_GE(cluster.site(1).counters().duplicate_msgs_ignored, 2u);
  EXPECT_EQ(cluster.site(1).db().Read(0)->version, 1u);  // LWW: version = txn
  EXPECT_EQ(cluster.site(1).db().Read(1)->version, 2u);
}

TEST(BatchingTest, PostBatchDecisionQueryAnswersEveryMember) {
  // Satellite of the group-commit change: the batch outcome demux must
  // record EACH member transaction individually, so an in-doubt
  // participant's later decision query about any one member is answered
  // from the cache — never by presumed abort.
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  (void)RunConcurrently(cluster,
                        {{MakeTxn(1, {Operation::Write(0, 10)}), 0},
                         {MakeTxn(2, {Operation::Write(1, 20)}), 0}});
  ASSERT_EQ(cluster.site(0).counters().batch_rounds_coordinated, 1u);

  Probe probe;
  cluster.transport().Register(kProbe, &probe);
  (void)cluster.transport().Send(MakeMessage(kProbe, 0, DecisionQueryArgs{1}));
  (void)cluster.transport().Send(MakeMessage(kProbe, 0, DecisionQueryArgs{2}));
  cluster.RunUntilIdle();

  EXPECT_EQ(probe.CountOf(MsgType::kCommit), 2u);
  EXPECT_EQ(probe.CountOf(MsgType::kAbort), 0u);
  EXPECT_EQ(cluster.site(0).counters().decision_queries_answered, 2u);
  EXPECT_EQ(cluster.site(0).counters().decisions_presumed_abort, 0u);
}

}  // namespace
}  // namespace miniraid

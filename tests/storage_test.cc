// Tests for the durability substrate: CRC32, the write-ahead log
// (including torn-tail crash recovery), and the snapshot+log durable
// database (reopen fidelity, checkpointing, corruption detection).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/rng.h"
#include "storage/durable_database.h"
#include "storage/wal.h"

namespace miniraid {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("miniraid_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST(Crc32Test, KnownVectors) {
  // Standard check value: CRC32("123456789") = 0xCBF43926.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  Rng rng(5);
  std::vector<uint8_t> data(257);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{100}, data.size()}) {
    const uint32_t first = Crc32(data.data(), split);
    const uint32_t whole =
        Crc32Extend(first, data.data() + split, data.size() - split);
    EXPECT_EQ(whole, Crc32(data.data(), data.size())) << "split " << split;
  }
}

TEST(Crc32Test, DetectsBitFlips) {
  std::vector<uint8_t> data(64, 0xab);
  const uint32_t clean = Crc32(data.data(), data.size());
  data[13] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST_F(StorageTest, WalAppendAndReplay) {
  const std::string path = Path("wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint8_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->Append({i, uint8_t(i + 1)}).ok());
    }
    EXPECT_EQ((*wal)->size_bytes(), 10u * (8 + 2));
  }
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(
                  path,
                  [&records](const uint8_t* p, size_t n) {
                    records.emplace_back(p, p + n);
                    return Status::Ok();
                  },
                  &valid)
                  .ok());
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[3], (std::vector<uint8_t>{3, 4}));
  EXPECT_EQ(valid, 100u);
}

TEST_F(StorageTest, WalReplayOfMissingFileIsEmpty) {
  uint64_t valid = 99;
  ASSERT_TRUE(WriteAheadLog::Replay(
                  Path("nope"),
                  [](const uint8_t*, size_t) {
                    ADD_FAILURE() << "unexpected record";
                    return Status::Ok();
                  },
                  &valid)
                  .ok());
  EXPECT_EQ(valid, 0u);
}

TEST_F(StorageTest, TornTailTruncatedOnReopen) {
  const std::string path = Path("wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({1, 2, 3}).ok());
    ASSERT_TRUE((*wal)->Append({4, 5, 6}).ok());
  }
  // Simulate a crash mid-append: half a header plus garbage.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x07\x00", 2);
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->size_bytes(), 2u * (8 + 3));  // torn tail gone
  // The log is appendable again and both old records survive.
  ASSERT_TRUE((*wal)->Append({7}).ok());
  int count = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&count](const uint8_t*, size_t) {
                ++count;
                return Status::Ok();
              }).ok());
  EXPECT_EQ(count, 3);
}

TEST_F(StorageTest, CorruptPayloadEndsValidPrefix) {
  const std::string path = Path("wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(std::vector<uint8_t>(16, 0x11)).ok());
    ASSERT_TRUE((*wal)->Append(std::vector<uint8_t>(16, 0x22)).ok());
  }
  // Flip a byte inside the SECOND record's payload.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(8 + 16 + 8 + 4);
    file.put('\x99');
  }
  int count = 0;
  uint64_t valid = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(
                  path,
                  [&count](const uint8_t*, size_t) {
                    ++count;
                    return Status::Ok();
                  },
                  &valid)
                  .ok());
  EXPECT_EQ(count, 1);  // replay stops at the corrupt record
  EXPECT_EQ(valid, 8u + 16u);
}

TEST_F(StorageTest, DurableDatabaseSurvivesReopen) {
  DurableDatabase::Options options;
  options.dir = Dir();
  {
    auto db = DurableDatabase::Open(options, 8);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->CommitWrite(3, 33, 1).ok());
    ASSERT_TRUE((*db)->CommitWrite(5, 55, 2).ok());
    ASSERT_TRUE((*db)->CommitWrite(3, 34, 4).ok());
    ASSERT_TRUE((*db)->InstallCopy(7, ItemState{77, 3}).ok());
  }  // "crash": destroy without checkpointing
  auto db = DurableDatabase::Open(options, 8);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->replayed_records(), 4u);
  EXPECT_EQ((*db)->Read(3)->value, 34);
  EXPECT_EQ((*db)->Read(3)->version, 4u);
  EXPECT_EQ((*db)->Read(5)->value, 55);
  EXPECT_EQ((*db)->Read(7)->value, 77);
  EXPECT_FALSE((*db)->Holds(0));
}

TEST_F(StorageTest, CheckpointFoldsLogIntoSnapshot) {
  DurableDatabase::Options options;
  options.dir = Dir();
  {
    auto db = DurableDatabase::Open(options, 4);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CommitWrite(0, 1, 1).ok());
    ASSERT_TRUE((*db)->CommitWrite(1, 2, 2).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->wal_bytes(), 0u);
    ASSERT_TRUE((*db)->CommitWrite(2, 3, 3).ok());  // post-checkpoint delta
  }
  auto db = DurableDatabase::Open(options, 4);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->replayed_records(), 1u);  // only the delta replayed
  EXPECT_EQ((*db)->Read(0)->value, 1);
  EXPECT_EQ((*db)->Read(2)->value, 3);
}

TEST_F(StorageTest, AutoCheckpoint) {
  DurableDatabase::Options options;
  options.dir = Dir();
  options.auto_checkpoint_bytes = 100;
  auto db = DurableDatabase::Open(options, 4);
  ASSERT_TRUE(db.ok());
  for (TxnId t = 1; t <= 20; ++t) {
    ASSERT_TRUE((*db)->CommitWrite(0, Value(t), t).ok());
  }
  // The log was folded at least once, so it stays small.
  EXPECT_LT((*db)->wal_bytes(), 200u);
  EXPECT_TRUE(fs::exists(Path("snapshot")));
}

TEST_F(StorageTest, DropCopySurvivesReopen) {
  DurableDatabase::Options options;
  options.dir = Dir();
  {
    auto db = DurableDatabase::Open(options, 4);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CommitWrite(1, 10, 1).ok());
    ASSERT_TRUE((*db)->DropCopy(1).ok());
  }
  auto db = DurableDatabase::Open(options, 4);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->Holds(1));
}

TEST_F(StorageTest, CorruptSnapshotDetected) {
  DurableDatabase::Options options;
  options.dir = Dir();
  {
    auto db = DurableDatabase::Open(options, 4);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CommitWrite(1, 10, 1).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    std::fstream file(Path("snapshot"),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(6);
    file.put('\x5a');
  }
  const auto reopened = DurableDatabase::Open(options, 4);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, TornWalTailAfterCrashLosesOnlyTheTail) {
  DurableDatabase::Options options;
  options.dir = Dir();
  {
    auto db = DurableDatabase::Open(options, 4);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CommitWrite(0, 1, 1).ok());
    ASSERT_TRUE((*db)->CommitWrite(1, 2, 2).ok());
  }
  {
    std::ofstream out(Path("wal"), std::ios::binary | std::ios::app);
    out.write("\xff\xff\xff", 3);  // crash mid-append
  }
  auto db = DurableDatabase::Open(options, 4);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->Read(0)->value, 1);
  EXPECT_EQ((*db)->Read(1)->value, 2);
}

TEST_F(StorageTest, RandomizedReopenFidelity) {
  // Property: after any sequence of writes and arbitrary reopen points,
  // the durable image equals a plain in-memory Database fed the same ops.
  DurableDatabase::Options options;
  options.dir = Dir();
  Database oracle(16, {});
  Rng rng(77);
  TxnId txn = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    auto db = DurableDatabase::Open(options, 16);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 40; ++i) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(16));
      const Value value = static_cast<Value>(rng.Next() & 0xffff);
      ++txn;
      ASSERT_TRUE((*db)->CommitWrite(item, value, txn).ok());
      ASSERT_TRUE(oracle.InstallCopy(item, ItemState{value, txn}).ok());
    }
    if (epoch % 2 == 0) {
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
    // Destructor = crash (no checkpoint on odd epochs).
  }
  auto db = DurableDatabase::Open(options, 16);
  ASSERT_TRUE(db.ok());
  for (ItemId item = 0; item < 16; ++item) {
    ASSERT_EQ((*db)->Holds(item), oracle.Holds(item)) << "item " << item;
    if (oracle.Holds(item)) {
      EXPECT_EQ(*(*db)->Read(item), *oracle.Read(item)) << "item " << item;
    }
  }
}

}  // namespace
}  // namespace miniraid

#include "replication/lock_table.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

using Mode = LockTable::Mode;
using Outcome = LockTable::Outcome;

TEST(LockTableTest, GrantsFreeLocks) {
  LockTable table;
  EXPECT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  EXPECT_TRUE(table.Holds(1, 10));
  EXPECT_EQ(table.TotalHeld(), 1u);
}

TEST(LockTableTest, SharedLocksCoexist) {
  LockTable table;
  EXPECT_EQ(table.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(table.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(table.HolderCount(1), 2u);
}

TEST(LockTableTest, ReentrantAcquisition) {
  LockTable table;
  EXPECT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  EXPECT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  EXPECT_EQ(table.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(table.HolderCount(1), 1u);
}

TEST(LockTableTest, SoleSharedHolderUpgrades) {
  LockTable table;
  EXPECT_EQ(table.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  EXPECT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  // Now exclusive: another shared request from an older txn queues.
  bool granted = false;
  EXPECT_EQ(table.Acquire(1, 5, Mode::kShared, [&granted] { granted = true; }),
            Outcome::kQueued);
  table.ReleaseAll(10);
  EXPECT_TRUE(granted);
}

TEST(LockTableTest, WaitDieOlderWaitsYoungerDies) {
  LockTable table;
  ASSERT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  // Younger (larger id) conflicting requester dies immediately.
  EXPECT_EQ(table.Acquire(1, 20, Mode::kExclusive, nullptr),
            Outcome::kRejected);
  EXPECT_EQ(table.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kRejected);
  // Older (smaller id) requester waits.
  bool granted = false;
  EXPECT_EQ(
      table.Acquire(1, 5, Mode::kExclusive, [&granted] { granted = true; }),
      Outcome::kQueued);
  EXPECT_FALSE(granted);
  table.ReleaseAll(10);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(table.Holds(1, 5));
}

TEST(LockTableTest, FifoGrantOfQueuedWaiters) {
  LockTable table;
  ASSERT_EQ(table.Acquire(1, 30, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  std::vector<int> order;
  ASSERT_EQ(table.Acquire(1, 10, Mode::kExclusive,
                          [&order] { order.push_back(10); }),
            Outcome::kQueued);
  ASSERT_EQ(
      table.Acquire(1, 20, Mode::kExclusive, [&order] { order.push_back(20); }),
      Outcome::kQueued);
  table.ReleaseAll(30);
  // Only the first waiter gets the exclusive lock.
  EXPECT_EQ(order, (std::vector<int>{10}));
  table.ReleaseAll(10);
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

TEST(LockTableTest, SharedWaitersGrantTogether) {
  LockTable table;
  ASSERT_EQ(table.Acquire(1, 30, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  int granted = 0;
  ASSERT_EQ(
      table.Acquire(1, 10, Mode::kShared, [&granted] { ++granted; }),
      Outcome::kQueued);
  ASSERT_EQ(
      table.Acquire(1, 20, Mode::kShared, [&granted] { ++granted; }),
      Outcome::kQueued);
  table.ReleaseAll(30);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(table.HolderCount(1), 2u);
}

TEST(LockTableTest, QueuedSharedBlocksLaterSharedBehindWriter) {
  // No writer starvation: once an exclusive waiter queues, later shared
  // requests conflict (they must queue or die).
  LockTable table;
  ASSERT_EQ(table.Acquire(1, 10, Mode::kShared, nullptr), Outcome::kGranted);
  bool writer_granted = false;
  ASSERT_EQ(table.Acquire(1, 5, Mode::kExclusive,
                          [&writer_granted] { writer_granted = true; }),
            Outcome::kQueued);
  // Younger shared requester dies rather than jumping the writer.
  EXPECT_EQ(table.Acquire(1, 20, Mode::kShared, nullptr), Outcome::kRejected);
  table.ReleaseAll(10);
  EXPECT_TRUE(writer_granted);
}

TEST(LockTableTest, ReleaseCancelsQueuedRequests) {
  LockTable table;
  ASSERT_EQ(table.Acquire(1, 10, Mode::kExclusive, nullptr),
            Outcome::kGranted);
  bool granted = false;
  ASSERT_EQ(
      table.Acquire(1, 5, Mode::kExclusive, [&granted] { granted = true; }),
      Outcome::kQueued);
  table.ReleaseAll(5);  // the waiter gives up (abort path)
  table.ReleaseAll(10);
  EXPECT_FALSE(granted);
  EXPECT_EQ(table.TotalHeld(), 0u);
}

TEST(LockTableTest, ReleaseAllCoversManyItems) {
  LockTable table;
  for (ItemId item = 0; item < 5; ++item) {
    ASSERT_EQ(table.Acquire(item, 7, Mode::kExclusive, nullptr),
              Outcome::kGranted);
  }
  EXPECT_EQ(table.TotalHeld(), 5u);
  table.ReleaseAll(7);
  EXPECT_EQ(table.TotalHeld(), 0u);
}

}  // namespace
}  // namespace miniraid

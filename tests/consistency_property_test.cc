// Property-based tests of the paper's correctness invariants (DESIGN.md §5)
// under randomized failure/recovery schedules, parameterized over seeds and
// cluster sizes:
//
//   1. replica agreement at every quiescent point,
//   2. one-copy serial history (final values match a serial oracle),
//   3. session monotonicity,
//   4. recovery termination (all fail-locks eventually clear),
//   5. committed transactions read the latest committed values.

#include <gtest/gtest.h>

#include <map>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct PropertyCase {
  uint64_t seed;
  uint32_t n_sites;
};

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ConsistencyPropertyTest, InvariantsHoldUnderRandomFailures) {
  const PropertyCase param = GetParam();
  constexpr uint32_t kDbSize = 20;
  constexpr int kTxns = 150;

  ClusterOptions options;
  options.n_sites = param.n_sites;
  options.db_size = kDbSize;
  options.site.ack_timeout = Milliseconds(200);
  options.managing.client_timeout = Seconds(5);
  // The runtime invariant checker rides along: every quiescent step also
  // validates fail-lock/session consistency, table agreement, session
  // monotonicity, and write coverage (aborts on violation).
  options.check_invariants = true;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = kDbSize;
  wopts.max_txn_size = 6;
  wopts.seed = param.seed;
  UniformWorkload workload(wopts);
  Rng chaos(param.seed * 7919 + 13);

  // Oracle state: the value each item must hold after the serial history of
  // committed transactions; and the latest committed writer per item.
  std::map<ItemId, Value> expected_value;
  std::map<ItemId, TxnId> expected_writer;
  std::vector<SessionNumber> max_session(param.n_sites, 0);

  auto check_sessions = [&] {
    for (SiteId s = 0; s < param.n_sites; ++s) {
      SessionNumber freshest = 0;
      for (SiteId viewer = 0; viewer < param.n_sites; ++viewer) {
        freshest = std::max(
            freshest, cluster.site(viewer).session_vector().session(s));
      }
      ASSERT_GE(freshest, max_session[s]) << "session regressed for " << s;
      max_session[s] = freshest;
    }
  };

  for (int i = 0; i < kTxns; ++i) {
    // Chaos: maybe fail an up site (keeping at least one up), maybe
    // recover a down one.
    std::vector<SiteId> up = cluster.UpSites();
    if (up.size() > 1 && chaos.NextBool(0.10)) {
      cluster.Fail(up[chaos.NextBounded(up.size())]);
      up = cluster.UpSites();
    }
    if (up.size() < param.n_sites && chaos.NextBool(0.20)) {
      for (SiteId s = 0; s < param.n_sites; ++s) {
        if (!cluster.site(s).is_up()) {
          cluster.Recover(s);
          break;
        }
      }
      up = cluster.UpSites();
    }

    const TxnSpec txn = workload.Next();
    const SiteId coordinator = up[chaos.NextBounded(up.size())];
    const TxnResult reply = cluster.RunTxn(txn, coordinator);

    if (reply.outcome == TxnOutcome::kCommitted) {
      // Invariant 5: each read observed the latest committed value.
      for (const ItemCopy& read : reply.reads) {
        auto it = expected_value.find(read.item);
        const Value expected =
            it == expected_value.end() ? 0 : it->second;
        // A transaction that also writes the item before reading it is not
        // representable here (reads see pre-transaction state), so only
        // check items the transaction does not write.
        bool written = false;
        for (const Operation& op : txn.ops) {
          written |= op.is_write() && op.item == read.item;
        }
        if (!written) {
          ASSERT_EQ(read.value, expected)
              << "txn " << txn.id << " read stale item " << read.item;
        }
      }
      for (ItemId item : txn.WriteSet()) {
        expected_value[item] = WriteValueFor(txn.id, item);
        expected_writer[item] = txn.id;
      }
    }

    // Invariant 1 at quiescence: unlocked copies agree.
    const Status agreement = cluster.CheckReplicaAgreement();
    ASSERT_TRUE(agreement.ok())
        << "after txn " << txn.id << ": " << agreement.ToString();
    check_sessions();
  }

  // Invariant 4: recover everyone and drive to a fully-refreshed state.
  for (SiteId s = 0; s < param.n_sites; ++s) {
    if (!cluster.site(s).is_up()) cluster.Recover(s);
  }
  int cleanup = 0;
  auto all_clear = [&] {
    for (SiteId s = 0; s < param.n_sites; ++s) {
      if (cluster.FailLockCountFor(s) != 0) return false;
    }
    return true;
  };
  while (!all_clear() && cleanup < 3000) {
    const TxnSpec txn = workload.Next();
    (void)cluster.RunTxn(
        txn, static_cast<SiteId>(cleanup++ % param.n_sites));
  }
  ASSERT_TRUE(all_clear()) << "recovery did not terminate";

  // Invariant 2: with every copy fresh, all sites hold the oracle values.
  for (ItemId item = 0; item < kDbSize; ++item) {
    // Cleanup transactions extended the history; fold them into the oracle
    // already (they went through the committed path above only for the
    // first kTxns — recompute from replies is overkill; instead compare
    // across sites and versions).
    const ItemState reference = *cluster.site(0).db().Read(item);
    for (SiteId s = 1; s < param.n_sites; ++s) {
      const ItemState state = *cluster.site(s).db().Read(item);
      EXPECT_EQ(state, reference) << "item " << item << " site " << s;
    }
    // The value must be the canonical write of its last writer.
    if (reference.version != 0) {
      EXPECT_EQ(reference.value,
                WriteValueFor(reference.version, item))
          << "item " << item;
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_sites" +
         std::to_string(info.param.n_sites);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ConsistencyPropertyTest,
    ::testing::Values(PropertyCase{1, 2}, PropertyCase{2, 2},
                      PropertyCase{3, 3}, PropertyCase{4, 3},
                      PropertyCase{5, 4}, PropertyCase{6, 4},
                      PropertyCase{7, 5}, PropertyCase{8, 5},
                      PropertyCase{9, 4}, PropertyCase{10, 3},
                      PropertyCase{11, 2}, PropertyCase{12, 6}),
    CaseName);

/// The same chaos drive with the two-step recovery and type-3 extensions
/// enabled: the invariants must be preserved by the optional features too.
class ExtensionPropertyTest : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(ExtensionPropertyTest, InvariantsHoldWithExtensionsEnabled) {
  const PropertyCase param = GetParam();
  constexpr uint32_t kDbSize = 16;

  ClusterOptions options;
  options.n_sites = param.n_sites;
  options.db_size = kDbSize;
  options.site.ack_timeout = Milliseconds(200);
  options.site.batch_copier_threshold = 0.5;
  options.site.batch_copier_chunk = 4;
  options.site.enable_type3 = true;
  options.managing.client_timeout = Seconds(5);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = kDbSize;
  wopts.max_txn_size = 5;
  wopts.seed = param.seed;
  UniformWorkload workload(wopts);
  Rng chaos(param.seed ^ 0x5eedULL);

  for (int i = 0; i < 120; ++i) {
    std::vector<SiteId> up = cluster.UpSites();
    if (up.size() > 1 && chaos.NextBool(0.12)) {
      cluster.Fail(up[chaos.NextBounded(up.size())]);
      up = cluster.UpSites();
    }
    for (SiteId s = 0; s < param.n_sites; ++s) {
      if (!cluster.site(s).is_up() && chaos.NextBool(0.25)) {
        cluster.Recover(s);
      }
    }
    up = cluster.UpSites();
    (void)cluster.RunTxn(workload.Next(), up[chaos.NextBounded(up.size())]);
    const Status agreement = cluster.CheckReplicaAgreement();
    ASSERT_TRUE(agreement.ok()) << "txn " << i << ": "
                                << agreement.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ExtensionPropertyTest,
                         ::testing::Values(PropertyCase{21, 2},
                                           PropertyCase{22, 3},
                                           PropertyCase{23, 4},
                                           PropertyCase{24, 4},
                                           PropertyCase{25, 5}),
                         CaseName);

}  // namespace
}  // namespace miniraid

#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

namespace miniraid {
namespace {

class Collector : public MessageHandler {
 public:
  void OnMessage(const Message& msg) override {
    std::lock_guard<std::mutex> lock(mu);
    messages.push_back(msg);
  }
  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return messages.size();
  }
  Message At(size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return messages.at(i);
  }

  std::mutex mu;
  std::vector<Message> messages;
};

bool WaitForCount(Collector& collector, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (collector.Count() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const uint16_t base = PickEphemeralBasePort();
    ports_ = {{0, base}, {1, static_cast<uint16_t>(base + 1)}};
    a_ = std::make_unique<TcpTransport>(0, ports_, &loop_a_, &collector_a_);
    b_ = std::make_unique<TcpTransport>(1, ports_, &loop_b_, &collector_b_);
    ASSERT_TRUE(a_->Start().ok());
    ASSERT_TRUE(b_->Start().ok());
  }

  void TearDown() override {
    a_->Stop();
    b_->Stop();
  }

  std::map<SiteId, uint16_t> ports_;
  EventLoop loop_a_, loop_b_;
  Collector collector_a_, collector_b_;
  std::unique_ptr<TcpTransport> a_, b_;
};

TEST_F(TcpTransportTest, SendAndReceive) {
  PrepareArgs args;
  args.txn = 5;
  args.writes = {ItemWrite{1, 11}, ItemWrite{2, 22}};
  ASSERT_TRUE(a_->Send(MakeMessage(0, 1, args)).ok());
  ASSERT_TRUE(WaitForCount(collector_b_, 1));
  const Message received = collector_b_.At(0);
  EXPECT_EQ(received.type, MsgType::kPrepare);
  EXPECT_EQ(received.As<PrepareArgs>().writes[1].value, 22);
}

TEST_F(TcpTransportTest, BidirectionalTraffic) {
  ASSERT_TRUE(a_->Send(MakeMessage(0, 1, CommitArgs{1})).ok());
  ASSERT_TRUE(b_->Send(MakeMessage(1, 0, CommitAckArgs{1})).ok());
  EXPECT_TRUE(WaitForCount(collector_b_, 1));
  EXPECT_TRUE(WaitForCount(collector_a_, 1));
  EXPECT_EQ(collector_a_.At(0).type, MsgType::kCommitAck);
}

TEST_F(TcpTransportTest, FifoOverOneConnection) {
  constexpr TxnId kCount = 200;
  for (TxnId t = 1; t <= kCount; ++t) {
    ASSERT_TRUE(a_->Send(MakeMessage(0, 1, CommitArgs{t})).ok());
  }
  ASSERT_TRUE(WaitForCount(collector_b_, kCount));
  for (TxnId t = 1; t <= kCount; ++t) {
    EXPECT_EQ(collector_b_.At(t - 1).As<CommitArgs>().txn, t);
  }
  EXPECT_EQ(a_->messages_sent(), kCount);
  EXPECT_EQ(b_->messages_received(), kCount);
}

TEST_F(TcpTransportTest, LargeMessage) {
  RecoveryInfoArgs args;
  for (uint32_t i = 0; i < 4; ++i) {
    args.session_vector.push_back(SessionEntryWire{i, SiteStatus::kUp});
  }
  for (ItemId item = 0; item < 50000; ++item) {
    args.fail_locks.push_back(FailLockRow{item, 0x5a5a5a5aULL});
  }
  ASSERT_TRUE(a_->Send(MakeMessage(0, 1, args)).ok());
  ASSERT_TRUE(WaitForCount(collector_b_, 1));
  EXPECT_EQ(collector_b_.At(0).As<RecoveryInfoArgs>().fail_locks.size(),
            50000u);
}

TEST_F(TcpTransportTest, UnknownPeerIsError) {
  EXPECT_FALSE(a_->Send(MakeMessage(0, 7, CommitArgs{1})).ok());
}

TEST(TcpTransportStandaloneTest, StartWithoutHandlerFails) {
  EventLoop loop;
  std::map<SiteId, uint16_t> ports = {{0, PickEphemeralBasePort()}};
  TcpTransport transport(0, ports, &loop, nullptr);
  EXPECT_EQ(transport.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(TcpTransportStandaloneTest, ConnectToDeadPeerFails) {
  EventLoop loop;
  Collector collector;
  const uint16_t base = static_cast<uint16_t>(PickEphemeralBasePort() + 50);
  std::map<SiteId, uint16_t> ports = {{0, base},
                                      {1, static_cast<uint16_t>(base + 1)}};
  TcpTransport transport(0, ports, &loop, &collector);
  ASSERT_TRUE(transport.Start().ok());
  // Site 1 never started listening.
  EXPECT_EQ(transport.Send(MakeMessage(0, 1, CommitArgs{1})).code(),
            StatusCode::kIoError);
  transport.Stop();
}

}  // namespace
}  // namespace miniraid

// Cross-checks between the closed-form model (core/analysis.h) and the
// simulator: the analytic predictions must match the measured dynamics of
// the Figure-1 scenario within sampling tolerance. This catches systematic
// protocol bugs (e.g. fail-locks set or cleared at the wrong rate) that
// point assertions might miss.

#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/experiments.h"

namespace miniraid {
namespace {

using analysis::CopierDemandProbability;
using analysis::ExpectedFailLocksAfter;
using analysis::ExpectedOpsPerTxn;
using analysis::ExpectedTxnsToClear;
using analysis::ExpectedWritesPerTxn;
using analysis::MessagesPerCommit;

TEST(AnalysisTest, BasicFormulas) {
  EXPECT_DOUBLE_EQ(ExpectedOpsPerTxn(10), 5.5);
  EXPECT_DOUBLE_EQ(ExpectedOpsPerTxn(5), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedWritesPerTxn(5, 0.5), 1.5);
  EXPECT_EQ(MessagesPerCommit(3), 14u);
  EXPECT_EQ(MessagesPerCommit(0), 2u);
}

TEST(AnalysisTest, FailLockOccupancyLimits) {
  // No transactions: nothing locked. Many transactions: everything locked.
  EXPECT_DOUBLE_EQ(ExpectedFailLocksAfter(50, 5, 0.5, 0), 0.0);
  EXPECT_GT(ExpectedFailLocksAfter(50, 5, 0.5, 100), 45.0);  // paper: >90%
  EXPECT_LE(ExpectedFailLocksAfter(50, 5, 0.5, 100000), 50.0);
}

TEST(AnalysisTest, TailDominatesClearing) {
  // The paper's observation: the first 10 locks clear far faster than the
  // last 10. Clearing 47 -> 37 vs clearing 10 -> 0:
  const double first10 = ExpectedTxnsToClear(50, 5, 0.5, 47) -
                         ExpectedTxnsToClear(50, 5, 0.5, 37);
  const double last10 = ExpectedTxnsToClear(50, 5, 0.5, 10);
  EXPECT_GT(last10, 8 * first10);
}

TEST(AnalysisVsSimTest, PeakFailLocksMatchOccupancyFormula) {
  const double predicted = ExpectedFailLocksAfter(50, 5, 0.5, 100);
  double measured = 0;
  constexpr int kSeeds = 10;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Exp2Config config;
    config.scenario.seed = seed;
    measured += RunExperiment2(config).peak_fail_locks;
  }
  measured /= kSeeds;
  EXPECT_NEAR(measured, predicted, 1.5)
      << "predicted " << predicted << " measured " << measured;
}

TEST(AnalysisVsSimTest, RecoveryLengthMatchesCouponCollector) {
  Exp2Config probe;
  const double peak = ExpectedFailLocksAfter(50, 5, 0.5, probe.down_txns);
  const double predicted = ExpectedTxnsToClear(
      50, 5, 0.5, static_cast<uint32_t>(peak + 0.5));
  double measured = 0;
  constexpr int kSeeds = 10;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Exp2Config config;
    config.scenario.seed = seed;
    config.recovering_site_weight = 0;  // write-driven clearing only
    measured += RunExperiment2(config).txns_to_full_recovery;
  }
  measured /= kSeeds;
  // Heavy-tailed statistic: allow 25%.
  EXPECT_NEAR(measured, predicted, predicted * 0.25)
      << "predicted " << predicted << " measured " << measured;
}

TEST(AnalysisVsSimTest, MessageCountMatchesFormula) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 10;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  TxnSpec txn;
  txn.id = 1;
  txn.ops = {Operation::Write(0, 1), Operation::Read(1)};
  const uint64_t before = cluster.messages_sent();
  ASSERT_EQ(cluster.RunTxn(txn, 0).outcome, TxnOutcome::kCommitted);
  const uint64_t after = cluster.messages_sent();
  EXPECT_EQ(after - before, MessagesPerCommit(3));
}

TEST(AnalysisVsSimTest, CopierDemandMatchesProbability) {
  // At a recovering coordinator with k of n copies stale, the fraction of
  // transactions that demand a copier should track the formula.
  const double predicted = CopierDemandProbability(50, 5, 0.5, 25);
  uint64_t demanded = 0, total = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ClusterOptions options;
    options.n_sites = 2;
    options.db_size = 50;
    auto cluster_owner = MakeSimCluster(options);
    SimCluster& cluster = *cluster_owner;
    UniformWorkloadOptions wopts;
    wopts.db_size = 50;
    wopts.max_txn_size = 5;
    wopts.seed = seed;
    UniformWorkload workload(wopts);
    cluster.Fail(1);
    (void)cluster.RunTxn(workload.Next(), 0);  // detect
    // Fail-lock exactly 25 items.
    TxnId id = 1000;
    for (ItemId item = 0; item < 25; ++item) {
      TxnSpec txn;
      txn.id = id++;
      txn.ops = {Operation::Write(item, 1)};
      (void)cluster.RunTxn(txn, 0);
    }
    cluster.Recover(1);
    ASSERT_EQ(cluster.site(1).OwnFailLockCount(), 25u);
    // Sample copier demand WITHOUT clearing locks: read-only probes would
    // still clear them via the copier, so measure only the first txn per
    // fresh cluster... instead, approximate by sampling the workload
    // directly against the stale set.
    for (int i = 0; i < 400; ++i) {
      const TxnSpec txn = workload.Next();
      bool hits = false;
      for (ItemId item : txn.ReadSet()) {
        hits |= item < 25;
      }
      demanded += hits;
      ++total;
    }
  }
  EXPECT_NEAR(double(demanded) / double(total), predicted, 0.05);
}

}  // namespace
}  // namespace miniraid

#include "db/database.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(DatabaseTest, FullyReplicatedHoldsEverything) {
  Database db(50);
  EXPECT_EQ(db.n_items(), 50u);
  EXPECT_EQ(db.held_count(), 50u);
  for (ItemId item = 0; item < 50; ++item) {
    EXPECT_TRUE(db.Holds(item));
    const Result<ItemState> state = db.Read(item);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->value, 0);
    EXPECT_EQ(state->version, 0u);
  }
  EXPECT_FALSE(db.Holds(50));
}

TEST(DatabaseTest, PartialPlacement) {
  Database db(10, {1, 3, 5, 3});  // duplicate 3 counted once
  EXPECT_EQ(db.held_count(), 3u);
  EXPECT_TRUE(db.Holds(3));
  EXPECT_FALSE(db.Holds(0));
  EXPECT_TRUE(db.Read(0).status().IsNotFound());
}

TEST(DatabaseTest, CommitWriteAdvancesVersion) {
  Database db(4);
  ASSERT_TRUE(db.CommitWrite(2, 99, /*writer=*/7).ok());
  const ItemState state = *db.Read(2);
  EXPECT_EQ(state.value, 99);
  EXPECT_EQ(state.version, 7u);
}

TEST(DatabaseTest, CommitWriteRejectsRegression) {
  Database db(4);
  ASSERT_TRUE(db.CommitWrite(2, 99, 7).ok());
  const Status regress = db.CommitWrite(2, 1, 5);
  EXPECT_EQ(regress.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Read(2)->value, 99);  // unchanged
}

TEST(DatabaseTest, CommitWriteToUnheldItemFails) {
  Database db(4, {0});
  EXPECT_TRUE(db.CommitWrite(3, 1, 1).IsNotFound());
}

TEST(DatabaseTest, InstallCopyRefreshesAndCreates) {
  Database db(4, {0});
  // Refresh an existing copy.
  ASSERT_TRUE(db.InstallCopy(0, ItemState{5, 3}).ok());
  EXPECT_EQ(db.Read(0)->version, 3u);
  // Create a copy this site did not previously hold (control type 3).
  ASSERT_TRUE(db.InstallCopy(2, ItemState{7, 9}).ok());
  EXPECT_TRUE(db.Holds(2));
  EXPECT_EQ(db.held_count(), 2u);
  EXPECT_EQ(db.Read(2)->value, 7);
}

TEST(DatabaseTest, InstallCopyRejectsOlderCopy) {
  Database db(4);
  ASSERT_TRUE(db.InstallCopy(1, ItemState{5, 10}).ok());
  EXPECT_EQ(db.InstallCopy(1, ItemState{4, 9}).code(),
            StatusCode::kInvalidArgument);
  // Same version re-install is allowed (idempotent copier retries).
  EXPECT_TRUE(db.InstallCopy(1, ItemState{5, 10}).ok());
}

TEST(DatabaseTest, InstallCopyOutOfRange) {
  Database db(4);
  EXPECT_EQ(db.InstallCopy(99, ItemState{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, DropCopy) {
  Database db(4);
  ASSERT_TRUE(db.DropCopy(2).ok());
  EXPECT_FALSE(db.Holds(2));
  EXPECT_EQ(db.held_count(), 3u);
  EXPECT_TRUE(db.DropCopy(2).IsNotFound());
}

TEST(DatabaseTest, SnapshotExposesHeldState) {
  Database db(3, {1});
  ASSERT_TRUE(db.CommitWrite(1, 42, 1).ok());
  const auto& snapshot = db.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_FALSE(snapshot[0].has_value());
  ASSERT_TRUE(snapshot[1].has_value());
  EXPECT_EQ(snapshot[1]->value, 42);
}

}  // namespace
}  // namespace miniraid

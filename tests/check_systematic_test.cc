// Tests for the systematic-execution checker (check/systematic.h): the
// canned scenarios are clean under the documented oracle, exploration is
// deterministic, golden recording round-trips through replay, and the
// deliberately strengthened oracle still finds the known crash-mid-commit
// fail-lock divergence (the reason agreement is demoted from invariant to
// nominal-regime observation).

#include "check/systematic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/trace_io.h"

namespace miniraid::check {
namespace {

SystematicOptions Scenario(std::string_view name) {
  std::optional<SystematicOptions> opts = ScenarioByName(name);
  EXPECT_TRUE(opts.has_value()) << name;
  return *opts;
}

TEST(SystematicTest, ScenarioRegistryIsConsistent) {
  for (std::string_view name : ScenarioNames()) {
    EXPECT_TRUE(ScenarioByName(name).has_value()) << name;
  }
  EXPECT_FALSE(ScenarioByName("no-such-scenario").has_value());
}

TEST(SystematicTest, SmokeScenarioIsCleanAndDeterministic) {
  SystematicOptions opts = Scenario("smoke");
  SystematicResult a = ExploreSystematic(opts);
  ASSERT_FALSE(a.counterexample.has_value())
      << a.counterexample->note;
  EXPECT_GT(a.executions, 1u);
  SystematicResult b = ExploreSystematic(opts);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.steps_total, b.steps_total);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(SystematicTest, SleepSetsPruneWithoutChangingTheVerdict) {
  SystematicOptions with_sleep = Scenario("smoke");
  SystematicOptions without = with_sleep;
  without.sleep_sets = false;
  SystematicResult pruned = ExploreSystematic(with_sleep);
  SystematicResult full = ExploreSystematic(without);
  EXPECT_FALSE(pruned.counterexample.has_value());
  EXPECT_FALSE(full.counterexample.has_value());
  EXPECT_GT(pruned.sleep_skips, 0u);
  EXPECT_LE(pruned.executions, full.executions);
}

TEST(SystematicTest, StrengthenedOracleFindsCrashMidCommitDivergence) {
  // With pointwise fail-lock agreement promoted back to an invariant, the
  // explorer must find the legitimate divergence: a participant crashing
  // mid-commit leaves the coordinator fail-locking the silent site's
  // copies while the acked participants cleared them. This documents WHY
  // SystematicOracleOptions() excludes the agreement check.
  SystematicOptions opts = Scenario("smoke");
  opts.invariants = InvariantChecker::Options{};  // everything on
  SystematicResult r = ExploreSystematic(opts);
  ASSERT_TRUE(r.counterexample.has_value());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("FailLockAgreement"),
            std::string::npos)
      << r.violations.front();
  // The same schedule under the documented oracle replays clean: the
  // divergence is benign (the recovered site's own table carries the bit,
  // so local read safety holds).
  ReplayOutcome replay =
      ReplayTrace(*r.counterexample, SystematicOracleOptions());
  EXPECT_TRUE(replay.matched) << replay.mismatch;
  EXPECT_TRUE(replay.violations.empty())
      << replay.violations.front();
}

TEST(SystematicTest, GoldenTraceRoundTripsThroughJsonAndReplay) {
  SystematicOptions opts = Scenario("double-failure");
  CheckTrace golden = RecordGoldenTrace(opts);
  EXPECT_FALSE(golden.picks.empty());
  ASSERT_EQ(golden.picks.size(), golden.fanouts.size());

  // JSON round trip preserves every field replay depends on.
  Result<CheckTrace> parsed = TraceFromJson(TraceToJson(golden));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->picks, golden.picks);
  EXPECT_EQ(parsed->fanouts, golden.fanouts);
  EXPECT_EQ(parsed->actions.size(), golden.actions.size());

  ReplayOutcome out = ReplayTrace(*parsed);
  EXPECT_TRUE(out.matched) << out.mismatch;
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(SystematicTest, ReplayDetectsFanoutDivergence) {
  CheckTrace golden = RecordGoldenTrace(Scenario("smoke"));
  ASSERT_FALSE(golden.fanouts.empty());
  // Corrupt a recorded fanout: the replay contract requires the live
  // option count to match at every choice point.
  golden.fanouts[0] += 1;
  ReplayOutcome out = ReplayTrace(golden);
  EXPECT_FALSE(out.matched);
  EXPECT_NE(out.mismatch.find("fanout"), std::string::npos) << out.mismatch;
}

TEST(SystematicTest, InterleavedTwoPhaseLockingScenarioIsClean) {
  // The 2PL scenario runs two conflicting coordinations through one site
  // with a participant down; a trimmed sweep must stay violation-free and
  // the recorded trace must carry the concurrency configuration through
  // JSON so replay reconstructs the same engine.
  SystematicOptions opts = Scenario("interleaved-2pl");
  EXPECT_TRUE(opts.concurrency.locking());
  opts.max_executions = 500;
  SystematicResult r = ExploreSystematic(opts);
  EXPECT_FALSE(r.counterexample.has_value()) << r.counterexample->note;

  CheckTrace golden = RecordGoldenTrace(opts);
  Result<CheckTrace> parsed = TraceFromJson(TraceToJson(golden));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->concurrency.locking());
  EXPECT_EQ(parsed->concurrency.max_executors, 2u);
  ReplayOutcome out = ReplayTrace(*parsed);
  EXPECT_TRUE(out.matched) << out.mismatch;
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(SystematicTest, RecoveryScenariosAreCleanWithinBudget) {
  for (std::string_view name : {"recovery-window", "double-failure"}) {
    SystematicOptions opts = Scenario(name);
    // Trim budgets so the whole loop stays test-sized; exhaustive sweeps
    // run in minicheck --smoke and CI.
    opts.max_executions = std::min<uint64_t>(opts.max_executions, 300);
    SystematicResult r = ExploreSystematic(opts);
    EXPECT_FALSE(r.counterexample.has_value())
        << name << ": " << r.counterexample->note;
  }
}

}  // namespace
}  // namespace miniraid::check

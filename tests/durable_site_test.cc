// Integration of the protocol with the durability substrate: a site
// mirrors every applied mutation into a DurableDatabase via the on_apply
// hook; after a lose-state crash (process death), the driver restores the
// durable image with Site::RestoreImage before recovery — and the site
// rejoins exactly as if its memory had survived, with fail-locks covering
// only the updates committed while it was down.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/cluster.h"
#include "storage/durable_database.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

namespace fs = std::filesystem;

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

class DurableSiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("miniraid_durable_site_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }
  fs::path dir_;
};

std::vector<ItemCopy> ImageOf(const DurableDatabase& store) {
  std::vector<ItemCopy> image;
  for (ItemId item = 0; item < store.n_items(); ++item) {
    if (!store.Holds(item)) continue;
    const ItemState state = *store.Read(item);
    image.push_back(ItemCopy{item, state.value, state.version});
  }
  return image;
}

TEST_F(DurableSiteTest, MirrorRestoreRecoverCycle) {
  constexpr uint32_t kItems = 10;
  DurableDatabase::Options store_options;
  store_options.dir = Dir();
  auto store = DurableDatabase::Open(store_options, kItems);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = kItems;
  options.site.lose_state_on_crash = true;
  // The hook fires at every site. A real driver gives each site its own
  // store; mirroring both into one is fine here because the replicas
  // converge — stale-version rejections from cross-site ordering are
  // ignored.
  options.site.on_apply = [&store](ItemId item, Value value,
                                   Version version) {
    (void)(*store)->InstallCopy(item, ItemState{value, version});
  };
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  // Commit some state, then crash site 1 (memory wiped).
  for (TxnId t = 1; t <= 6; ++t) {
    ASSERT_EQ(cluster
                  .RunTxn(MakeTxn(t, {Operation::Write(
                              static_cast<ItemId>(t), Value(100 + t))}),
                          0)
                  .outcome,
              TxnOutcome::kCommitted);
  }
  cluster.Fail(1);
  EXPECT_EQ(cluster.site(1).db().Read(3)->version, 0u);  // wiped

  // More commits while site 1 is down (these are what fail-locks track).
  (void)cluster.RunTxn(MakeTxn(7, {Operation::Write(1, 201)}), 0);  // detect
  ASSERT_EQ(cluster.RunTxn(MakeTxn(8, {Operation::Write(2, 202)}), 0).outcome,
            TxnOutcome::kCommitted);

  // "Process restart": reload the durable store and restore the image.
  auto reopened = DurableDatabase::Open(store_options, kItems);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE(cluster.site(1).RestoreImage(ImageOf(**reopened)).ok());
  cluster.Recover(1);

  // The decisive check: with the image restored, the fail-lock set equals
  // what the operational sites recorded for the down period — NOT the
  // whole database, as a bare cold restart would require.
  EXPECT_LE(cluster.site(1).OwnFailLockCount(), 1u);
  EXPECT_EQ(cluster.site(1).db().Read(3)->value, 103);  // from the image
  const TxnResult read =
      cluster.RunTxn(MakeTxn(9, {Operation::Read(2)}), 1);
  EXPECT_EQ(read.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(read.reads.at(0).value, 202);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

TEST_F(DurableSiteTest, RestoreImageRequiresDownSite) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  const Status status =
      cluster.site(0).RestoreImage({ItemCopy{0, 1, 1}});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurableSiteTest, RestoreImageValidatesItems) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 4;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(1);
  EXPECT_EQ(cluster.site(1).RestoreImage({ItemCopy{99, 1, 1}}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DurableSiteTest, OnApplyHookSeesEveryCommittedWrite) {
  ClusterOptions options;
  options.n_sites = 2;
  options.db_size = 8;
  std::vector<std::tuple<ItemId, Value, Version>> applied;
  options.site.on_apply = [&applied](ItemId item, Value value,
                                     Version version) {
    applied.emplace_back(item, value, version);
  };
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  ASSERT_EQ(cluster
                .RunTxn(MakeTxn(1, {Operation::Write(3, 33),
                                    Operation::Write(5, 55)}),
                        0)
                .outcome,
            TxnOutcome::kCommitted);
  // Both sites applied both writes: 4 hook invocations.
  EXPECT_EQ(applied.size(), 4u);
  for (const auto& [item, value, version] : applied) {
    EXPECT_TRUE((item == 3 && value == 33) || (item == 5 && value == 55));
    EXPECT_EQ(version, 1u);
  }
}

TEST(DuplicateDeliveryTest, ProtocolToleratesRetransmittingTransport) {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 12;
  options.transport.duplicate_probability = 0.3;
  options.transport.jitter_seed = 4;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 12;
  wopts.max_txn_size = 5;
  wopts.seed = 4;
  UniformWorkload workload(wopts);

  uint64_t committed = 0;
  for (int i = 0; i < 60; ++i) {
    const TxnResult reply =
        cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
    committed += reply.outcome == TxnOutcome::kCommitted;
  }
  cluster.Fail(2);
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 2));
  }
  cluster.Recover(2);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % 3));
  }
  EXPECT_GE(committed, 58u);  // duplicates never break commits
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok())
      << cluster.CheckReplicaAgreement().ToString();
}

}  // namespace
}  // namespace miniraid

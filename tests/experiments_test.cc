// End-to-end checks that the experiment runners reproduce the paper's
// published numbers (Experiment 1, calibrated compositions) and shapes
// (Experiments 2 and 3). Tolerances on Experiment 1 are tight because the
// simulator is deterministic; Experiments 2-3 assert the structural claims
// that hold across seeds.

#include "core/experiments.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

void ExpectNearPct(double value, double target, double pct) {
  EXPECT_GE(value, target * (1 - pct / 100.0));
  EXPECT_LE(value, target * (1 + pct / 100.0));
}

TEST(Experiment1Test, FailLockOverheadMatchesPaperTable) {
  Exp1Config config;
  config.measured_txns = 100;
  const Exp1FailLockOverheadResult r = RunExp1FailLockOverhead(config);
  ExpectNearPct(r.coord_without_ms, 176.0, 5);
  ExpectNearPct(r.coord_with_ms, 186.0, 5);
  ExpectNearPct(r.part_without_ms, 90.0, 8);
  ExpectNearPct(r.part_with_ms, 97.0, 8);
  // The paper's conclusion: maintenance is a slight overhead (a few %).
  const double delta_pct =
      100.0 * (r.coord_with_ms - r.coord_without_ms) / r.coord_without_ms;
  EXPECT_GT(delta_pct, 1.0);
  EXPECT_LT(delta_pct, 12.0);
}

TEST(Experiment1Test, ControlTransactionCostsMatchPaper) {
  const Exp1ControlResult r = RunExp1Control(Exp1Config{});
  ExpectNearPct(r.type1_recovering_ms, 190.0, 8);
  ExpectNearPct(r.type1_operational_ms, 50.0, 8);
  ExpectNearPct(r.type2_ms, 68.0, 8);
  // Structural claim: type 1 at the recoverer costs more than at an
  // operational site (it spans the whole exchange).
  EXPECT_GT(r.type1_recovering_ms, r.type1_operational_ms);
}

TEST(Experiment1Test, CopierTransactionCostsMatchPaper) {
  const Exp1CopierResult r = RunExp1Copier(Exp1Config{});
  ExpectNearPct(r.txn_with_copier_ms, 270.0, 10);
  ExpectNearPct(r.txn_plain_ms, 186.0, 5);
  ExpectNearPct(r.copy_serve_ms, 25.0, 15);
  ExpectNearPct(r.clear_locks_ms, 20.0, 15);
  // The headline: a copier transaction costs roughly +45%.
  EXPECT_GT(r.increase_pct, 30.0);
  EXPECT_LT(r.increase_pct, 60.0);
}

TEST(Experiment1Test, ScalingShapes) {
  // Type-1-at-operational and type-2 are independent of the site count
  // (paper §2.2.2); coordinator time and type-1-at-recoverer grow with it.
  // Small case has 3 sites: with 2, a type-2 announcement has no third
  // site to go to and the receive-side cost is unobservable.
  Exp1Config small;
  small.n_sites = 3;
  small.measured_txns = 40;
  Exp1Config large;
  large.n_sites = 8;
  large.measured_txns = 40;
  const Exp1ControlResult c_small = RunExp1Control(small);
  const Exp1ControlResult c_large = RunExp1Control(large);
  EXPECT_NEAR(c_small.type2_ms, c_large.type2_ms, 2.0);
  EXPECT_NEAR(c_small.type1_operational_ms, c_large.type1_operational_ms,
              6.0);
  EXPECT_GT(c_large.type1_recovering_ms, c_small.type1_recovering_ms);
  const double coord_small = RunExp1FailLockOverhead(small).coord_with_ms;
  const double coord_large = RunExp1FailLockOverhead(large).coord_with_ms;
  EXPECT_GT(coord_large, coord_small * 1.4);
}

TEST(Experiment2Test, RecoveryTraceHasPaperShape) {
  Exp2Config config;
  config.scenario.seed = 5;
  const Exp2Result r = RunExperiment2(config);
  // ">90% of the copies on site 0" fail-locked after 100 transactions.
  EXPECT_GE(r.peak_fail_locks, 45u);
  EXPECT_LE(r.peak_fail_locks, 50u);
  // Full recovery happens, in the same regime as the paper's 160.
  EXPECT_GE(r.txns_to_full_recovery, 40u);
  EXPECT_LE(r.txns_to_full_recovery, 400u);
  // The clearing rate decays: the last 10 take longer than the first 10.
  EXPECT_GT(r.last10_txns, r.first10_txns);
  // Few copier transactions with the paper's routing (paper: 2).
  EXPECT_LE(r.copier_txns, 6u);
  EXPECT_TRUE(r.scenario.consistency.ok())
      << r.scenario.consistency.ToString();
}

TEST(Experiment2Test, MonotoneRiseAndFall) {
  Exp2Config config;
  config.scenario.seed = 3;
  const Exp2Result r = RunExperiment2(config);
  // While site 0 is down the count never decreases; during recovery it
  // never increases.
  uint32_t prev = 0;
  for (const TxnRecord& rec : r.scenario.txns) {
    const uint32_t count = rec.fail_locks_per_site[0];
    if (rec.txn_no <= 100) {
      EXPECT_GE(count, prev) << "txn " << rec.txn_no;
    } else {
      EXPECT_LE(count, prev) << "txn " << rec.txn_no;
    }
    prev = count;
  }
}

TEST(Experiment3Test, Scenario1AlternatingFailuresAbortOnUnavailableData) {
  ScenarioConfig config;
  config.seed = 2;
  const Exp3Result r = RunExperiment3Scenario1(config);
  // Paper: 13 aborts at site 0 because copier targets were down. Across
  // seeds this lands in the low teens; structural claim: strictly > 0.
  EXPECT_GT(r.scenario.aborted_data_unavailable, 4u);
  EXPECT_LT(r.scenario.aborted_data_unavailable, 22u);
  EXPECT_EQ(r.scenario.aborts_by_coordinator[0],
            r.scenario.aborted_data_unavailable);
  EXPECT_TRUE(r.scenario.consistency.ok())
      << r.scenario.consistency.ToString();
}

TEST(Experiment3Test, Scenario2SuccessiveFailuresNeverLoseData) {
  ScenarioConfig config;
  config.seed = 1;
  const Exp3Result r = RunExperiment3Scenario2(config);
  // Paper: "the sites were able to recover without any aborted transactions
  // due to data being unavailable."
  EXPECT_EQ(r.scenario.aborted_data_unavailable, 0u);
  // Every site accumulated inconsistency while down...
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_GT(r.peak_per_site[s], 10u) << "site " << s;
  }
  // ...and each site's inconsistency is well below its peak by the end.
  // (The paper's run stops at transaction 160; the coupon-collector tail
  // means the curves approach zero without necessarily reaching it.)
  const auto& final_counts = r.scenario.txns.back().fail_locks_per_site;
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_LT(final_counts[s], r.peak_per_site[s] / 2) << "site " << s;
  }
  EXPECT_TRUE(r.scenario.consistency.ok())
      << r.scenario.consistency.ToString();
}

TEST(ScenarioRunnerTest, DeterministicForSeed) {
  ScenarioConfig config;
  config.seed = 9;
  const Exp3Result a = RunExperiment3Scenario1(config);
  const Exp3Result b = RunExperiment3Scenario1(config);
  ASSERT_EQ(a.scenario.txns.size(), b.scenario.txns.size());
  for (size_t i = 0; i < a.scenario.txns.size(); ++i) {
    EXPECT_EQ(a.scenario.txns[i].outcome, b.scenario.txns[i].outcome);
    EXPECT_EQ(a.scenario.txns[i].fail_locks_per_site,
              b.scenario.txns[i].fail_locks_per_site);
  }
}

}  // namespace
}  // namespace miniraid

// Fine-grained tests of the Site protocol engine's semantics: fail-lock
// maintenance inside commit, the special clear-fail-locks transaction,
// recovery-time table adoption, session-pinned failure announcements, and
// the Appendix-A abort paths.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/experiments.h"

namespace miniraid {
namespace {

ClusterOptions Options(uint32_t n_sites, uint32_t db_size = 10) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = db_size;
  return options;
}

TxnSpec MakeTxn(TxnId id, std::vector<Operation> ops) {
  TxnSpec txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

/// Fails `site` and runs one throwaway transaction so the failure is
/// detected and announced (control type 2) before the interesting part.
void FailAndDetect(SimCluster& cluster, SiteId victim, SiteId detector,
                   TxnId txn_id) {
  cluster.Fail(victim);
  const TxnResult reply = cluster.RunTxn(
      MakeTxn(txn_id, {Operation::Write(0, 1)}), detector);
  ASSERT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed);
}

TEST(SiteProtocolTest, MaintenanceSetsBitsOnlyForDownHolders) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  FailAndDetect(cluster, 2, 0, 1);

  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(5, 55)}), 0);
  // Bit set for the down site 2 at both operational sites; clear for the
  // operational sites themselves.
  for (SiteId viewer : {0u, 1u}) {
    const FailLockTable& table = cluster.site(viewer).fail_locks();
    EXPECT_TRUE(table.IsSet(5, 2)) << "viewer " << viewer;
    EXPECT_FALSE(table.IsSet(5, 0));
    EXPECT_FALSE(table.IsSet(5, 1));
  }
}

TEST(SiteProtocolTest, MaintenanceCountersTrackTransitions) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  FailAndDetect(cluster, 1, 0, 1);
  const uint64_t before = cluster.site(0).counters().fail_locks_set;
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 1)}), 0);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(3, 2)}), 0);  // re-set
  // Only the first write transitions the bit.
  EXPECT_EQ(cluster.site(0).counters().fail_locks_set, before + 1);
}

TEST(SiteProtocolTest, DisablingMaintenanceSkipsFailLocks) {
  ClusterOptions options = Options(2);
  options.site.maintain_fail_locks = false;  // the Experiment-1 toggle
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  FailAndDetect(cluster, 1, 0, 1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 1)}), 0);
  EXPECT_EQ(cluster.site(0).fail_locks().TotalSet(), 0u);
}

TEST(SiteProtocolTest, SpecialTxnClearsLocksAtAllOperationalSites) {
  auto cluster_owner = MakeSimCluster(Options(4));
  SimCluster& cluster = *cluster_owner;
  FailAndDetect(cluster, 3, 0, 1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(7, 70)}), 0);
  cluster.Recover(3);
  ASSERT_TRUE(cluster.site(3).fail_locks().IsSet(7, 3));

  // A read at the recovering coordinator triggers the copier + the special
  // clear-fail-locks transaction; all four tables converge.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(3, {Operation::Read(7)}), 3);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.copier_count, 1u);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_FALSE(cluster.site(s).fail_locks().IsSet(7, 3)) << "site " << s;
  }
  EXPECT_GE(cluster.site(3).counters().clear_lock_txns_sent, 1u);
  EXPECT_GE(cluster.site(0).counters().clear_lock_txns_received, 1u);
}

TEST(SiteProtocolTest, RecoveryAdoptsOperationalTablesDiscardingFrozenOnes) {
  // The stale-table resurrection hazard: site 1 crashes holding bits that
  // say site 0 is stale; site 0 refreshes while site 1 is down; when site 1
  // recovers it must adopt the operational view, not union in its frozen
  // (now wrong) bits — otherwise it would refuse site 0 as a copy source.
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  // Phase 1: site 0 down, write item 3 -> site 1 records 3 stale at 0.
  FailAndDetect(cluster, 0, 1, 1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 30)}), 1);
  ASSERT_TRUE(cluster.site(1).fail_locks().IsSet(3, 0));
  cluster.Recover(0);
  // Phase 2: site 1 down; site 0 refreshes item 3 by writing it.
  FailAndDetect(cluster, 1, 0, 3);
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(3, 33)}), 0);
  ASSERT_FALSE(cluster.site(0).fail_locks().IsSet(3, 0));
  ASSERT_TRUE(cluster.site(0).fail_locks().IsSet(3, 1));
  // Phase 3: site 1 recovers. Its frozen "3 stale at 0" must NOT survive.
  cluster.Recover(1);
  EXPECT_FALSE(cluster.site(1).fail_locks().IsSet(3, 0))
      << "frozen fail-lock resurrected after recovery";
  EXPECT_TRUE(cluster.site(1).fail_locks().IsSet(3, 1));
  // And the copier path works: site 1 reads item 3 via site 0.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(5, {Operation::Read(3)}), 1);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 33);
}

TEST(SiteProtocolTest, StaleFailureAnnouncementIgnored) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  // Site 2 fails and recovers: now in session 2.
  cluster.Fail(2);
  cluster.Recover(2);
  ASSERT_EQ(cluster.site(0).session_vector().session(2), 2u);
  // A stale type-2 announcement about session 1 must not mark it down.
  const std::vector<FailedSiteEntry> stale = {FailedSiteEntry{2, 1}};
  (void)cluster.transport().Send(
      MakeMessage(1, 0, FailureAnnounceArgs{stale}));
  cluster.RunUntilIdle();
  EXPECT_TRUE(cluster.site(0).session_vector().IsUp(2));
  // A current-session announcement does mark it down.
  const std::vector<FailedSiteEntry> current = {FailedSiteEntry{2, 2}};
  (void)cluster.transport().Send(
      MakeMessage(1, 0, FailureAnnounceArgs{current}));
  cluster.RunUntilIdle();
  EXPECT_FALSE(cluster.site(0).session_vector().IsUp(2));
}

TEST(SiteProtocolTest, SessionNumbersIncreaseAcrossRecoveries) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  for (SessionNumber expected = 2; expected <= 5; ++expected) {
    cluster.Fail(1);
    cluster.Recover(1);
    EXPECT_EQ(cluster.site(1).session_vector().session(1), expected);
    EXPECT_EQ(cluster.site(0).session_vector().session(1), expected);
  }
}

TEST(SiteProtocolTest, AbortDiscardsStagedWritesAtParticipants) {
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  cluster.Fail(2);
  // This transaction reaches participant 1 (which acks) but aborts because
  // participant 2 never answers. Site 1 must discard the staged write.
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(4, 44)}), 0);
  ASSERT_EQ(reply.outcome, TxnOutcome::kAbortedParticipantFailed);
  EXPECT_EQ(cluster.site(1).db().Read(4)->value, 0);
  EXPECT_EQ(cluster.site(1).db().Read(4)->version, 0u);
  EXPECT_EQ(cluster.site(1).counters().aborts_handled, 1u);
  EXPECT_EQ(cluster.site(0).db().Read(4)->version, 0u);  // coordinator too
}

TEST(SiteProtocolTest, RecoveringSiteServesOnlyFreshCopies) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  FailAndDetect(cluster, 1, 0, 1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(3, 30)}), 0);
  (void)cluster.RunTxn(MakeTxn(3, {Operation::Write(6, 60)}), 0);
  cluster.Recover(1);
  // Ask site 1 (in its recovery period) for a fresh and a stale item.
  class Probe : public MessageHandler {
   public:
    void OnMessage(const Message& msg) override {
      if (msg.type == MsgType::kCopyReply) {
        copies = msg.As<CopyReplyArgs>().copies;
        ++replies;
      }
    }
    std::vector<ItemCopy> copies;
    int replies = 0;
  };
  Probe probe;
  cluster.transport().Register(77, &probe);
  (void)cluster.transport().Send(
      MakeMessage(77, 1, CopyRequestArgs{1, {3, 5}}));
  cluster.RunUntilIdle();
  ASSERT_EQ(probe.replies, 1);
  // Item 3 is fail-locked at site 1 (stale) and must be withheld; item 5
  // was never written while down, so it is fresh and served.
  ASSERT_EQ(probe.copies.size(), 1u);
  EXPECT_EQ(probe.copies[0].item, 5u);
}

TEST(SiteProtocolTest, CopierGroupsBySourceWhenFreshCopiesAreSpread) {
  // Experiment-3 conclusion: "fail-locks can properly track the location of
  // the correct values for data items even when these values are spread out
  // over multiple sites."
  auto cluster_owner = MakeSimCluster(Options(3));
  SimCluster& cluster = *cluster_owner;
  // Make site 1 the only fresh holder of item 1: write while 2 was down...
  FailAndDetect(cluster, 2, 0, 1);
  (void)cluster.RunTxn(MakeTxn(2, {Operation::Write(1, 11)}), 0);
  cluster.Recover(2);
  // ...and site 2 the only fresh holder of item 2: write while 0 was down,
  // then also mark site 1 stale for item 2 by hand? Instead: fail 0, write
  // item 2 (fresh at 1 and 2), recover 0 -- now item 2 stale at 0 only.
  FailAndDetect(cluster, 0, 1, 3);
  (void)cluster.RunTxn(MakeTxn(4, {Operation::Write(2, 22)}), 1);
  cluster.Recover(0);
  // Site 0 is stale on item 2; site 2 is stale on item 1. A transaction at
  // site 0 reading both must fetch item 2 remotely; a transaction at site 2
  // reading both must fetch item 1 remotely. Values converge everywhere.
  TxnResult reply =
      cluster.RunTxn(MakeTxn(5, {Operation::Read(1), Operation::Read(2)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 11);
  EXPECT_EQ(reply.reads.at(1).value, 22);
  reply =
      cluster.RunTxn(MakeTxn(6, {Operation::Read(1), Operation::Read(2)}), 2);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(reply.reads.at(0).value, 11);
  EXPECT_EQ(reply.reads.at(1).value, 22);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SiteProtocolTest, CommitPhaseTimeoutStillCommits) {
  // Appendix A: "if commit ack not received from all participating sites
  // then run control type 2" — and then commit anyway. Force this by
  // dropping the commit message to site 1.
  ClusterOptions options = Options(2);
  SimCluster* cluster_ptr = nullptr;
  options.transport.drop_filter = [&cluster_ptr](const Message& msg) {
    return msg.type == MsgType::kCommit && msg.to == 1 &&
           cluster_ptr != nullptr;
  };
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  cluster_ptr = &cluster;
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(0).db().Read(2)->value, 22);
  // The silent participant was announced failed (control type 2).
  EXPECT_FALSE(cluster.site(0).session_vector().IsUp(1));
  EXPECT_GE(cluster.site(0).counters().control2_initiated, 1u);
}

TEST(SiteProtocolTest, ParticipantDetectsDeadCoordinator) {
  // Drop the commit AND the abort so the participant's patience timer
  // expires: it must discard the staged write and run control type 2.
  ClusterOptions options = Options(3);
  options.transport.drop_filter = [](const Message& msg) {
    return msg.from == 0 && msg.to == 1 &&
           (msg.type == MsgType::kCommit || msg.type == MsgType::kAbort);
  };
  options.managing.client_timeout = Seconds(30);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  const TxnResult reply =
      cluster.RunTxn(MakeTxn(1, {Operation::Write(2, 22)}), 0);
  // The coordinator itself commits (it got both prepare acks; site 1's
  // missing commit-ack is a phase-two timeout).
  EXPECT_EQ(reply.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.site(1).counters().coordinator_failures_detected, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(2)->version, 0u);  // staged discarded
  // Site 2 committed normally.
  EXPECT_EQ(cluster.site(2).db().Read(2)->value, 22);
}

TEST(SiteProtocolTest, OverlappingRequestQueuesAndExecutesAfter) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  // Submit two transactions to the same coordinator back to back: the
  // second queues behind the first and executes once the slot frees up
  // (per-site execution stays serial).
  std::optional<TxnResult> first;
  std::optional<TxnResult> second;
  cluster.managing().Submit(MakeTxn(1, {Operation::Write(0, 1)}), 0,
                            [&first](const TxnResult& r) { first = r; });
  cluster.managing().Submit(MakeTxn(2, {Operation::Write(1, 1)}), 0,
                            [&second](const TxnResult& r) { second = r; });
  cluster.RunUntilIdle();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(second->outcome, TxnOutcome::kCommitted);
  // Both executed, in order, at every site.
  EXPECT_EQ(cluster.site(0).db().Read(0)->version, 1u);
  EXPECT_EQ(cluster.site(1).db().Read(1)->version, 2u);
  EXPECT_TRUE(cluster.CheckReplicaAgreement().ok());
}

TEST(SiteProtocolTest, ShutdownSilencesSite) {
  auto cluster_owner = MakeSimCluster(Options(2));
  SimCluster& cluster = *cluster_owner;
  cluster.managing().Shutdown(1);
  cluster.RunUntilIdle();
  EXPECT_EQ(cluster.site(1).local_status(), SiteStatus::kTerminating);
  // A terminated site ignores transactions; coordinator 1 never answers.
  ClusterOptions unused = Options(2);
  (void)unused;
  std::optional<TxnResult> reply;
  cluster.managing().Submit(MakeTxn(1, {Operation::Read(0)}), 1,
                            [&reply](const TxnResult& r) { reply = r; });
  cluster.RunUntilIdle();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->outcome, TxnOutcome::kCoordinatorUnreachable);
}

}  // namespace
}  // namespace miniraid

#include "common/strings.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("site %u took %.1f ms", 3u, 12.34), "site 3 took 12.3 ms");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(1000, 'x');
  EXPECT_EQ(StrFormat("[%s]", big.c_str()).size(), 1002u);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitJoinTest, RoundTrip) {
  const std::string original = "one,two,,four";
  EXPECT_EQ(StrJoin(StrSplit(original, ','), ","), original);
}

}  // namespace
}  // namespace miniraid

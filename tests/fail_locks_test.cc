#include "replication/fail_locks.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace miniraid {
namespace {

TEST(FailLockTableTest, StartsClear) {
  FailLockTable table(50, 4);
  EXPECT_EQ(table.TotalSet(), 0u);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(table.CountForSite(s), 0u);
  }
  EXPECT_FALSE(table.IsSet(0, 0));
}

TEST(FailLockTableTest, SetClearReportTransitions) {
  FailLockTable table(50, 4);
  EXPECT_TRUE(table.Set(10, 2));    // 0 -> 1
  EXPECT_FALSE(table.Set(10, 2));   // already set
  EXPECT_TRUE(table.IsSet(10, 2));
  EXPECT_EQ(table.CountForSite(2), 1u);
  EXPECT_EQ(table.TotalSet(), 1u);
  EXPECT_TRUE(table.Clear(10, 2));   // 1 -> 0
  EXPECT_FALSE(table.Clear(10, 2));  // already clear
  EXPECT_EQ(table.TotalSet(), 0u);
}

TEST(FailLockTableTest, RowIsPerSiteBitmap) {
  FailLockTable table(8, 4);
  table.Set(3, 0);
  table.Set(3, 2);
  EXPECT_EQ(table.Row(3).bits(), 0b0101u);
  EXPECT_TRUE(table.Row(4).None());
}

TEST(FailLockTableTest, FractionAndItemList) {
  FailLockTable table(10, 2);
  for (ItemId item = 0; item < 4; ++item) table.Set(item, 1);
  EXPECT_DOUBLE_EQ(table.FractionLockedFor(1), 0.4);
  EXPECT_EQ(table.ItemsLockedFor(1), (std::vector<ItemId>{0, 1, 2, 3}));
  EXPECT_EQ(table.ItemsLockedFor(1, 2), (std::vector<ItemId>{0, 1}));
  EXPECT_TRUE(table.ItemsLockedFor(0).empty());
}

TEST(FailLockTableTest, WireOmitsEmptyRows) {
  FailLockTable table(10, 2);
  table.Set(7, 0);
  table.Set(2, 1);
  const std::vector<FailLockRow> wire = table.ToWire();
  ASSERT_EQ(wire.size(), 2u);
  EXPECT_EQ(wire[0].item, 2u);
  EXPECT_EQ(wire[1].item, 7u);
}

TEST(FailLockTableTest, MergeUnions) {
  FailLockTable a(10, 4);
  a.Set(1, 0);
  a.Set(2, 1);
  FailLockTable b(10, 4);
  b.Set(2, 1);  // overlap
  b.Set(2, 3);
  ASSERT_TRUE(b.MergeFrom(a.ToWire()).ok());
  EXPECT_TRUE(b.IsSet(1, 0));
  EXPECT_TRUE(b.IsSet(2, 1));
  EXPECT_TRUE(b.IsSet(2, 3));
  EXPECT_EQ(b.TotalSet(), 3u);
}

TEST(FailLockTableTest, MergeRejectsUnknownItem) {
  FailLockTable table(5, 2);
  EXPECT_EQ(table.MergeFrom({FailLockRow{9, 1}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailLockTableTest, CountsStayConsistentUnderRandomOps) {
  // Property: incremental per-site counters always equal a recount.
  FailLockTable table(32, 8);
  Rng rng(5);
  for (int op = 0; op < 5000; ++op) {
    const ItemId item = static_cast<ItemId>(rng.NextBounded(32));
    const SiteId site = static_cast<SiteId>(rng.NextBounded(8));
    if (rng.NextBool(0.5)) {
      table.Set(item, site);
    } else {
      table.Clear(item, site);
    }
  }
  uint64_t total = 0;
  for (SiteId site = 0; site < 8; ++site) {
    uint32_t recount = 0;
    for (ItemId item = 0; item < 32; ++item) {
      recount += table.IsSet(item, site) ? 1 : 0;
    }
    EXPECT_EQ(table.CountForSite(site), recount) << "site " << site;
    total += recount;
  }
  EXPECT_EQ(table.TotalSet(), total);
}

TEST(FailLockTableTest, WireRoundTripPreservesEverything) {
  FailLockTable table(64, 8);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    table.Set(static_cast<ItemId>(rng.NextBounded(64)),
              static_cast<SiteId>(rng.NextBounded(8)));
  }
  FailLockTable copy(64, 8);
  ASSERT_TRUE(copy.MergeFrom(table.ToWire()).ok());
  for (ItemId item = 0; item < 64; ++item) {
    EXPECT_EQ(copy.Row(item), table.Row(item)) << "item " << item;
  }
  EXPECT_EQ(copy.TotalSet(), table.TotalSet());
}

}  // namespace
}  // namespace miniraid

#include "msg/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace miniraid {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0x1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);

  Decoder dec(enc.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, LittleEndianOnTheWire) {
  Encoder enc;
  enc.PutU32(0x01020304);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.buffer()[0], 0x04);
  EXPECT_EQ(enc.buffer()[3], 0x01);
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  16383, 16384,     (1ULL << 32),
                             ~0ULL};
  for (const uint64_t v : values) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.buffer());
    uint64_t out = 0;
    ASSERT_TRUE(dec.GetVarint(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(CodecTest, VarintSizes) {
  Encoder enc;
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 1u);
  enc.Clear();
  enc.PutVarint(128);
  EXPECT_EQ(enc.size(), 2u);
  enc.Clear();
  enc.PutVarint(~0ULL);
  EXPECT_EQ(enc.size(), 10u);
}

TEST(CodecTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("hello");
  enc.PutString("");
  enc.PutString(std::string("\0\x01wire", 6));
  Decoder dec(enc.buffer());
  std::string a, b, c;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  ASSERT_TRUE(dec.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string("\0\x01wire", 6));
}

TEST(CodecTest, VectorRoundTrip) {
  Encoder enc;
  const std::vector<uint32_t> values = {5, 10, 15};
  enc.PutVector(values, [](Encoder& e, uint32_t v) { e.PutU32(v); });
  Decoder dec(enc.buffer());
  std::vector<uint32_t> out;
  ASSERT_TRUE(dec.GetVector<uint32_t>(&out, [](Decoder& d, uint32_t* v) {
                     return d.GetU32(v);
                   }).ok());
  EXPECT_EQ(out, values);
}

TEST(CodecTest, TruncationIsCorruptionNotCrash) {
  Encoder enc;
  enc.PutU64(12345);
  enc.PutString("payload");
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    Decoder dec(enc.buffer().data(), cut);
    uint64_t v;
    std::string s;
    Status status = dec.GetU64(&v);
    if (status.ok()) status = dec.GetString(&s);
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(CodecTest, OverlongVarintRejected) {
  std::vector<uint8_t> evil(11, 0x80);  // never terminates within 64 bits
  Decoder dec(evil.data(), evil.size());
  uint64_t v;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, HugeVectorLengthRejectedUpFront) {
  Encoder enc;
  enc.PutVarint(1ULL << 40);  // claims a trillion elements
  Decoder dec(enc.buffer());
  std::vector<uint32_t> out;
  const Status status = dec.GetVector<uint32_t>(
      &out, [](Decoder& d, uint32_t* v) { return d.GetU32(v); });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(out.empty());
}

TEST(CodecTest, RandomValuesRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    Encoder enc;
    std::vector<uint64_t> values;
    for (int i = 0; i < 20; ++i) {
      values.push_back(rng.Next() >> (rng.NextBounded(64)));
      enc.PutVarint(values.back());
    }
    Decoder dec(enc.buffer());
    for (const uint64_t expected : values) {
      uint64_t v = 0;
      ASSERT_TRUE(dec.GetVarint(&v).ok());
      ASSERT_EQ(v, expected);
    }
    ASSERT_TRUE(dec.AtEnd());
  }
}

TEST(CodecTest, PutFixedAppendsAfterStringContent) {
  // Regression for the byte-at-a-time PutFixed workaround: the memcpy
  // rewrite must append at the write cursor after arbitrary prior content
  // (including across vector reallocation), not scribble from offset 0.
  Encoder enc;
  enc.PutString(std::string(300, 'x'));  // force at least one realloc later
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  Decoder dec(enc.buffer());
  std::string s;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(dec.GetString(&s).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  EXPECT_EQ(s.size(), 300u);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, PutBytesAndReserveMatchPushByteEncoding) {
  Encoder manual;
  const uint8_t raw[] = {1, 2, 3, 4, 5};
  for (uint8_t b : raw) manual.PutU8(b);
  Encoder bulk;
  bulk.reserve(sizeof(raw));
  bulk.PutBytes(raw, sizeof(raw));
  EXPECT_EQ(bulk.buffer(), manual.buffer());
}

TEST(CodecTest, ReuseConstructorKeepsCapacityDiscardsContents) {
  Encoder first;
  first.PutString(std::string(1000, 'a'));
  std::vector<uint8_t> storage = first.TakeBuffer();
  const size_t cap = storage.capacity();
  ASSERT_GE(cap, 1000u);

  Encoder reused(std::move(storage));
  EXPECT_EQ(reused.size(), 0u);  // contents discarded...
  reused.PutU64(7);
  Encoder fresh;
  fresh.PutU64(7);
  EXPECT_EQ(reused.buffer(), fresh.buffer());  // ...encoding unaffected
  EXPECT_GE(reused.TakeBuffer().capacity(), cap);  // ...capacity kept
}

TEST(CodecTest, FramePoolRecyclesBuffersWithinBounds) {
  FramePool pool;
  Encoder enc = pool.Acquire();
  enc.PutString(std::string(2000, 'z'));
  std::vector<uint8_t> buf = enc.TakeBuffer();
  const uint8_t* data = buf.data();
  pool.Release(std::move(buf));
  EXPECT_EQ(pool.free_count(), 1u);

  // The next acquire hands the same storage back: no allocation in steady
  // state.
  Encoder again = pool.Acquire();
  again.PutU8(1);
  EXPECT_EQ(again.buffer().data(), data);
  EXPECT_EQ(pool.free_count(), 0u);

  // An oversized frame is dropped instead of pinning its capacity.
  std::vector<uint8_t> huge;
  huge.reserve(1u << 20);
  pool.Release(std::move(huge));
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(CodecTest, GetStringViewIsBoundsChecked) {
  Encoder enc;
  enc.PutString("payload");
  // Valid: the view aliases the wire bytes.
  {
    Decoder dec(enc.buffer());
    std::string_view v;
    ASSERT_TRUE(dec.GetStringView(&v).ok());
    EXPECT_EQ(v, "payload");
    EXPECT_TRUE(dec.AtEnd());
  }
  // A declared length past the end of the buffer must be rejected, not
  // read out of bounds — including every truncation of the valid frame.
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    Decoder dec(enc.buffer().data(), cut);
    std::string_view v;
    EXPECT_EQ(dec.GetStringView(&v).code(), StatusCode::kCorruption)
        << "cut=" << cut;
  }
  // An absurd length prefix with no payload behind it.
  Encoder evil;
  evil.PutVarint(1ULL << 32);
  Decoder dec(evil.buffer());
  std::string_view v;
  EXPECT_EQ(dec.GetStringView(&v).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace miniraid

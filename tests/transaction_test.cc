#include "txn/transaction.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(OperationTest, Factories) {
  const Operation read = Operation::Read(7);
  EXPECT_TRUE(read.is_read());
  EXPECT_FALSE(read.is_write());
  EXPECT_EQ(read.item, 7u);

  const Operation write = Operation::Write(3, -5);
  EXPECT_TRUE(write.is_write());
  EXPECT_EQ(write.value, -5);
}

TEST(TxnSpecTest, ReadAndWriteSetsDedupInOrder) {
  TxnSpec txn;
  txn.id = 1;
  txn.ops = {Operation::Read(5),      Operation::Write(2, 1),
             Operation::Read(5),      Operation::Read(0),
             Operation::Write(2, 9),  Operation::Write(7, 3)};
  EXPECT_EQ(txn.ReadSet(), (std::vector<ItemId>{5, 0}));
  EXPECT_EQ(txn.WriteSet(), (std::vector<ItemId>{2, 7}));
}

TEST(TxnSpecTest, Touches) {
  TxnSpec txn;
  txn.ops = {Operation::Read(1), Operation::Write(4, 0)};
  EXPECT_TRUE(txn.Touches(1));
  EXPECT_TRUE(txn.Touches(4));
  EXPECT_FALSE(txn.Touches(2));
}

TEST(TxnSpecTest, ToStringShowsOps) {
  TxnSpec txn;
  txn.id = 12;
  txn.ops = {Operation::Read(1), Operation::Write(2, 34)};
  EXPECT_EQ(txn.ToString(), "txn 12 {R(1), W(2=34)}");
}

TEST(TxnOutcomeTest, AllNamed) {
  EXPECT_EQ(TxnOutcomeName(TxnOutcome::kCommitted), "Committed");
  EXPECT_EQ(TxnOutcomeName(TxnOutcome::kAbortedCopierFailed),
            "AbortedCopierFailed");
  EXPECT_EQ(TxnOutcomeName(TxnOutcome::kCoordinatorUnreachable),
            "CoordinatorUnreachable");
}

TEST(WriteValueForTest, DeterministicAndSpread) {
  EXPECT_EQ(WriteValueFor(1, 1), WriteValueFor(1, 1));
  EXPECT_NE(WriteValueFor(1, 1), WriteValueFor(1, 2));
  EXPECT_NE(WriteValueFor(1, 1), WriteValueFor(2, 1));
  EXPECT_GE(WriteValueFor(123, 45), 0);  // always non-negative
}

}  // namespace
}  // namespace miniraid

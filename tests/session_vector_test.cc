#include "replication/session_vector.h"

#include <gtest/gtest.h>

namespace miniraid {
namespace {

TEST(SessionVectorTest, InitialStateAllUpSessionOne) {
  SessionVector vec(4);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_TRUE(vec.IsUp(s));
    EXPECT_EQ(vec.session(s), 1u);
  }
  EXPECT_EQ(vec.OperationalCount(), 4u);
  EXPECT_EQ(vec.OperationalSites(), (std::vector<SiteId>{0, 1, 2, 3}));
}

TEST(SessionVectorTest, MarkDownAndUp) {
  SessionVector vec(3);
  vec.MarkDown(1);
  EXPECT_FALSE(vec.IsUp(1));
  EXPECT_EQ(vec.status(1), SiteStatus::kDown);
  EXPECT_EQ(vec.OperationalSites(), (std::vector<SiteId>{0, 2}));
  vec.MarkUp(1, 2);
  EXPECT_TRUE(vec.IsUp(1));
  EXPECT_EQ(vec.session(1), 2u);
}

TEST(SessionVectorTest, MergeHigherSessionWins) {
  SessionVector local(2);
  local.MarkDown(1);  // we think site 1 is down in session 1
  std::vector<SessionEntryWire> remote = {
      SessionEntryWire{1, SiteStatus::kUp},
      SessionEntryWire{2, SiteStatus::kUp},  // it recovered: session 2
  };
  ASSERT_TRUE(local.MergeFrom(remote).ok());
  EXPECT_TRUE(local.IsUp(1));
  EXPECT_EQ(local.session(1), 2u);
}

TEST(SessionVectorTest, MergeSameSessionDownWins) {
  SessionVector local(2);
  std::vector<SessionEntryWire> remote = {
      SessionEntryWire{1, SiteStatus::kUp},
      SessionEntryWire{1, SiteStatus::kDown},  // failure news, same epoch
  };
  ASSERT_TRUE(local.MergeFrom(remote).ok());
  EXPECT_FALSE(local.IsUp(1));
}

TEST(SessionVectorTest, MergeStaleNewsIgnored) {
  SessionVector local(2);
  local.Set(1, 5, SiteStatus::kUp);
  std::vector<SessionEntryWire> remote = {
      SessionEntryWire{1, SiteStatus::kUp},
      SessionEntryWire{3, SiteStatus::kDown},  // old epoch's failure
  };
  ASSERT_TRUE(local.MergeFrom(remote).ok());
  EXPECT_TRUE(local.IsUp(1));
  EXPECT_EQ(local.session(1), 5u);
}

TEST(SessionVectorTest, MergeIsIdempotentAndCommutative) {
  auto build = [](std::vector<SessionEntryWire> a,
                  std::vector<SessionEntryWire> b, bool swap) {
    SessionVector vec(3);
    if (swap) std::swap(a, b);
    EXPECT_TRUE(vec.MergeFrom(a).ok());
    EXPECT_TRUE(vec.MergeFrom(b).ok());
    EXPECT_TRUE(vec.MergeFrom(a).ok());  // idempotent re-merge
    return vec;
  };
  const std::vector<SessionEntryWire> a = {
      SessionEntryWire{2, SiteStatus::kUp},
      SessionEntryWire{1, SiteStatus::kDown},
      SessionEntryWire{4, SiteStatus::kUp}};
  const std::vector<SessionEntryWire> b = {
      SessionEntryWire{1, SiteStatus::kUp},
      SessionEntryWire{3, SiteStatus::kUp},
      SessionEntryWire{4, SiteStatus::kDown}};
  EXPECT_EQ(build(a, b, false), build(a, b, true));
}

TEST(SessionVectorTest, MergeSizeMismatchRejected) {
  SessionVector vec(3);
  EXPECT_EQ(vec.MergeFrom({SessionEntryWire{1, SiteStatus::kUp}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionVectorTest, WireRoundTrip) {
  SessionVector vec(3);
  vec.Set(0, 4, SiteStatus::kUp);
  vec.Set(1, 2, SiteStatus::kDown);
  vec.Set(2, 7, SiteStatus::kWaitingToRecover);
  SessionVector other(3);
  ASSERT_TRUE(other.MergeFrom(vec.ToWire()).ok());
  EXPECT_EQ(other.session(0), 4u);
  EXPECT_EQ(other.status(2), SiteStatus::kWaitingToRecover);
}

TEST(SessionVectorTest, ToStringIsReadable) {
  SessionVector vec(2);
  vec.MarkDown(1);
  EXPECT_EQ(vec.ToString(), "[s0:1/up, s1:1/down]");
}

}  // namespace
}  // namespace miniraid

// Extension bench: concurrent transaction processing (the paper's "complete
// RAID" future-work direction). Measures committed transactions per second
// of virtual time as the offered concurrency (outstanding transactions)
// grows, with coordinators spread round-robin across the sites. Serial
// submission (window = 1) is the paper's configuration; larger windows
// overlap distinct coordinators' two-phase commits.

#include <cstdio>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Row {
  double txns_per_virtual_second = 0;
  double committed_fraction = 0;
};

Row Measure(uint32_t window, uint32_t n_sites) {
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = 50;
  options.site.costs = CostModel::PaperCalibrated();
  options.site.ack_timeout = Seconds(5);
  options.sim.shared_cpu = false;  // a site per machine: real overlap
  options.transport.message_latency = Milliseconds(9);
  SimCluster cluster(options);

  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 10;
  UniformWorkload workload(wopts);

  constexpr uint32_t kTxns = 400;
  uint32_t next = 0;
  uint64_t committed = 0;
  uint32_t outstanding = 0;

  // Keep `window` transactions in flight until kTxns have been submitted.
  std::function<void()> pump = [&] {
    while (outstanding < window && next < kTxns) {
      const SiteId coordinator = static_cast<SiteId>(next % n_sites);
      TxnSpec txn = workload.Next();
      ++next;
      ++outstanding;
      cluster.managing().Submit(txn, coordinator,
                                [&](const TxnReplyArgs& reply) {
                                  --outstanding;
                                  committed +=
                                      reply.outcome == TxnOutcome::kCommitted;
                                  pump();
                                });
    }
  };
  const TimePoint start = cluster.runtime().now();
  pump();
  cluster.RunUntilIdle();
  const double seconds =
      double(cluster.runtime().now() - start) / double(Seconds(1));

  Row row;
  row.txns_per_virtual_second = double(kTxns) / seconds;
  row.committed_fraction = double(committed) / double(kTxns);
  return row;
}

void Run() {
  std::printf("=== Extension: concurrent transaction throughput (paper's "
              "future-work direction) ===\n");
  std::printf("config: db=50, max txn size=10, 9 ms messages, one CPU per "
              "site, 400 txns,\ncoordinators round-robin; window = "
              "outstanding transactions\n\n");
  std::printf("%-8s | %-24s | %-24s\n", "window", "4 sites (txn/s virtual)",
              "8 sites (txn/s virtual)");
  for (const uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
    const Row four = Measure(window, 4);
    const Row eight = Measure(window, 8);
    std::printf("%-8u | %11.1f (%.0f%% ok) | %11.1f (%.0f%% ok)\n", window,
                four.txns_per_virtual_second, 100 * four.committed_fraction,
                eight.txns_per_virtual_second,
                100 * eight.committed_fraction);
  }
  std::printf("\nExpected shape: throughput rises with the window until the "
              "per-site serial\nexecution saturates (~n_sites concurrent "
              "coordinations), with everything\nstill committing — "
              "last-writer-wins keeps replicas convergent without a\nlock "
              "manager (reads are not serializable; see "
              "tests/concurrency_test.cc).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Extension bench: concurrent transaction processing (the paper's "complete
// RAID" future-work direction), now driven through the unified Cluster API
// and the closed-loop workload driver.
//
// Section 1 reproduces the simulator scaling table: committed transactions
// per second of *virtual* time as the submission window grows, coordinators
// round-robin across sites. Serial submission (window = 1) is the paper's
// configuration; larger windows overlap distinct coordinators' two-phase
// commits.
//
// Section 2 is the real-runtime gate: on the in-process backend it compares
// a literal serial RunTxn loop against pipelined submission with a window
// of 8 and reports the wall-clock speedup (expected >= 2x).
//
// Section 3 is the group-commit gate: under two-phase locking with a
// submission window of 64, batched 2PC (BatchingOptions::max_batch = 16)
// against unbatched 2PC on the simulator, paper-calibrated costs. The
// batch coalesces N prepare/commit rounds — and N fail-lock maintenance
// passes — into one, so committed txn/s of virtual time must improve.
//
//   bench_concurrent_throughput [--smoke] [--json[=PATH]] [--json-batch[=PATH]]
//
// --smoke shrinks every phase for CI; --json writes one JSON object with
// the section-2 numbers (default path BENCH_throughput.json); --json-batch
// writes the section-3 numbers (default path BENCH_batch.json).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "core/cluster.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Config {
  uint32_t sim_txns = 400;
  uint32_t real_txns = 400;
  uint32_t batch_txns = 800;
  std::string json_path;        // empty = no JSON output
  std::string batch_json_path;  // empty = no JSON output
};

UniformWorkloadOptions WorkloadConfig() {
  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 3;
  return wopts;
}

std::unique_ptr<Cluster> Make(const ClusterOptions& options) {
  auto cluster = MakeCluster(options);
  MR_CHECK(cluster.ok()) << cluster.status().ToString();
  return std::move(*cluster);
}

// -- section 1: simulator window scaling ------------------------------------

DriverReport MeasureSim(uint32_t window, uint32_t n_sites, uint32_t txns) {
  ClusterOptions options;
  options.backend = ClusterBackend::kSim;
  options.n_sites = n_sites;
  options.db_size = 50;
  options.site.costs = CostModel::PaperCalibrated();
  options.site.ack_timeout = Seconds(5);
  options.sim.shared_cpu = false;  // a site per machine: real overlap
  options.transport.message_latency = Milliseconds(9);
  options.max_inflight = window;
  auto cluster = Make(options);

  UniformWorkload workload(WorkloadConfig());
  DriverOptions dopts;
  dopts.concurrency = window;
  dopts.measure_txns = txns;
  return Driver(cluster.get(), &workload, dopts).Run();
}

void RunSimSection(const Config& config) {
  std::printf("=== Extension: concurrent transaction throughput (paper's "
              "future-work direction) ===\n");
  std::printf("config: db=50, max txn size=3, 9 ms messages, one CPU per "
              "site, %u txns,\ncoordinators round-robin; window = "
              "outstanding transactions (virtual time)\n\n",
              config.sim_txns);
  std::printf("%-8s | %-24s | %-24s\n", "window", "4 sites (txn/s virtual)",
              "8 sites (txn/s virtual)");
  for (const uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
    const DriverReport four = MeasureSim(window, 4, config.sim_txns);
    const DriverReport eight = MeasureSim(window, 8, config.sim_txns);
    std::printf("%-8u | %11.1f (%.0f%% ok) | %11.1f (%.0f%% ok)\n", window,
                four.CommittedPerSec(),
                100.0 * double(four.committed) / double(four.submitted),
                eight.CommittedPerSec(),
                100.0 * double(eight.committed) / double(eight.submitted));
  }
  std::printf("\nExpected shape: throughput rises with the window until the "
              "per-site serial\nexecution saturates (~n_sites concurrent "
              "coordinations), with everything\nstill committing — "
              "last-writer-wins keeps replicas convergent without a\nlock "
              "manager (reads are not serializable; see "
              "tests/concurrency_test.cc).\n\n");
}

// -- section 2: real in-process runtime, serial vs pipelined ----------------

ClusterOptions RealOptions(uint32_t window) {
  ClusterOptions options;
  options.backend = ClusterBackend::kInProc;
  options.n_sites = 4;
  options.db_size = 50;
  options.site.ack_timeout = Seconds(2);
  options.managing.client_timeout = Seconds(20);
  options.max_inflight = window;
  // Emulated inter-site link latency (the paper measured 9 ms per message;
  // 1 ms keeps the bench quick). This is what serial submission pays on
  // every hop of every transaction and what pipelining overlaps.
  options.inproc.message_latency = Milliseconds(1);
  return options;
}

/// The pre-pipelining submission pattern, kept literal on purpose: one
/// RunTxn at a time, next submission only after the previous reply. A
/// warmup prefix settles connections, allocators and the scheduler before
/// the timed section.
DriverReport MeasureRealSerial(uint32_t warmup, uint32_t txns) {
  auto cluster = Make(RealOptions(0));
  UniformWorkload workload(WorkloadConfig());
  for (uint32_t i = 0; i < warmup; ++i) {
    (void)cluster->RunTxn(workload.Next(), static_cast<SiteId>(i % 4));
  }
  DriverReport report;
  const TimePoint start = cluster->Now();
  for (uint32_t i = 0; i < txns; ++i) {
    const TxnResult reply =
        cluster->RunTxn(workload.Next(), static_cast<SiteId>(i % 4));
    ++report.submitted;
    if (reply.outcome == TxnOutcome::kCommitted) {
      ++report.committed;
    } else if (reply.outcome == TxnOutcome::kCoordinatorUnreachable) {
      ++report.unreachable;
    } else {
      ++report.aborted;
    }
  }
  report.elapsed = cluster->Now() - start;
  report.completed = true;
  return report;
}

DriverReport MeasureRealPipelined(uint32_t window, uint32_t warmup,
                                  uint32_t txns) {
  auto cluster = Make(RealOptions(window));
  UniformWorkload workload(WorkloadConfig());
  DriverOptions dopts;
  dopts.concurrency = window;
  dopts.warmup_txns = warmup;
  dopts.measure_txns = txns;
  return Driver(cluster.get(), &workload, dopts).Run();
}

/// Best of `reps` runs: wall-clock throughput on a shared machine is noisy
/// (scheduler interference shows up as one-sided slowdowns), so the
/// per-variant best is the stable comparison point.
template <typename MeasureFn>
DriverReport BestOf(uint32_t reps, const MeasureFn& measure) {
  DriverReport best;
  for (uint32_t i = 0; i < reps; ++i) {
    DriverReport report = measure();
    if (i == 0 || report.CommittedPerSec() > best.CommittedPerSec()) {
      best = std::move(report);
    }
  }
  return best;
}

bool RunRealSection(const Config& config) {
  constexpr uint32_t kWindow = 8;
  constexpr uint32_t kReps = 3;
  const uint32_t warmup = config.real_txns / 4;
  std::printf("=== Real runtime (in-process queues): serial RunTxn loop vs "
              "pipelined window=%u (best of %u) ===\n", kWindow, kReps);
  const DriverReport serial = BestOf(kReps, [&] {
    return MeasureRealSerial(warmup, config.real_txns);
  });
  const DriverReport pipelined = BestOf(kReps, [&] {
    return MeasureRealPipelined(kWindow, warmup, config.real_txns);
  });
  std::printf("serial    : %s\n", serial.Summary().c_str());
  std::printf("window=%u  : %s\n", kWindow, pipelined.Summary().c_str());
  const double speedup =
      serial.CommittedPerSec() > 0
          ? pipelined.CommittedPerSec() / serial.CommittedPerSec()
          : 0.0;
  const bool pass = speedup >= 2.0;
  std::printf("speedup: %.2fx (gate: >= 2x) %s\n\n", speedup,
              pass ? "PASS" : "FAIL");

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    out << "{\"bench\": \"concurrent_throughput\", \"backend\": \"inproc\", "
        << "\"window\": " << kWindow << ",\n  \"serial\": "
        << serial.ToJson("serial") << ",\n  \"pipelined\": "
        << pipelined.ToJson("window8") << ",\n  \"speedup\": " << speedup
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n";
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return pass;
}

// -- section 3: group commit, batched vs unbatched 2PC ----------------------

DriverReport MeasureSimLocking(uint32_t window, uint32_t txns,
                               uint32_t max_batch) {
  ClusterOptions options;
  options.backend = ClusterBackend::kSim;
  options.n_sites = 4;
  // Low contention on purpose: the gate measures round coalescing, and at
  // window 64 a small database makes cross-batch wait cycles (resolved
  // only by the batch ack timeout, PROTOCOL.md §7.1) dominate the tail.
  options.db_size = 2000;
  options.site.costs = CostModel::PaperCalibrated();
  options.site.ack_timeout = Seconds(5);
  options.site.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
  options.site.concurrency.max_executors = window;
  options.site.batching.max_batch = max_batch;
  options.site.batching.batch_linger = Milliseconds(2);
  options.sim.shared_cpu = false;
  options.transport.message_latency = Milliseconds(9);
  options.max_inflight = window;
  auto cluster = Make(options);

  UniformWorkloadOptions wopts = WorkloadConfig();
  wopts.db_size = 2000;
  UniformWorkload workload(wopts);
  DriverOptions dopts;
  dopts.concurrency = window;
  dopts.measure_txns = txns;
  return Driver(cluster.get(), &workload, dopts).Run();
}

bool RunBatchSection(const Config& config) {
  constexpr uint32_t kWindow = 64;
  constexpr uint32_t kMaxBatch = 16;
  std::printf("=== Group commit: batched vs unbatched 2PC (sim, 2PL, "
              "window=%u, %u txns) ===\n", kWindow, config.batch_txns);
  const DriverReport unbatched =
      MeasureSimLocking(kWindow, config.batch_txns, /*max_batch=*/1);
  const DriverReport batched =
      MeasureSimLocking(kWindow, config.batch_txns, kMaxBatch);
  std::printf("unbatched      : %s\n", unbatched.Summary().c_str());
  std::printf("max_batch=%-2u   : %s\n", kMaxBatch, batched.Summary().c_str());
  const double speedup =
      unbatched.CommittedPerSec() > 0
          ? batched.CommittedPerSec() / unbatched.CommittedPerSec()
          : 0.0;
  const bool pass = speedup >= 1.05;
  std::printf("speedup: %.2fx (gate: >= 1.05x, virtual time) %s\n\n", speedup,
              pass ? "PASS" : "FAIL");

  if (!config.batch_json_path.empty()) {
    std::ofstream out(config.batch_json_path);
    out << "{\"bench\": \"group_commit\", \"backend\": \"sim\", "
        << "\"window\": " << kWindow << ", \"max_batch\": " << kMaxBatch
        << ",\n  \"unbatched\": " << unbatched.ToJson("unbatched")
        << ",\n  \"batched\": " << batched.ToJson("batched")
        << ",\n  \"speedup\": " << speedup << ", \"pass\": "
        << (pass ? "true" : "false") << "}\n";
    std::printf("wrote %s\n", config.batch_json_path.c_str());
  }
  return pass;
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.sim_txns = 60;
      config.real_txns = 120;
      config.batch_txns = 300;
    } else if (arg == "--json") {
      config.json_path = "BENCH_throughput.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--json-batch") {
      config.batch_json_path = "BENCH_batch.json";
    } else if (arg.rfind("--json-batch=", 0) == 0) {
      config.batch_json_path = arg.substr(std::strlen("--json-batch="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  miniraid::RunSimSection(config);
  const bool real_pass = miniraid::RunRealSection(config);
  const bool batch_pass = miniraid::RunBatchSection(config);
  return real_pass && batch_pass ? 0 : 1;
}

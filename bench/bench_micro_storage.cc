// Microbenchmarks for the durability substrate: WAL append (buffered and
// fsynced), replay, and snapshot checkpointing.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "storage/durable_database.h"
#include "storage/wal.h"

namespace miniraid {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("miniraid_bench_") + name + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void BM_WalAppendBuffered(benchmark::State& state) {
  const std::string dir = FreshDir("wal");
  auto wal = WriteAheadLog::Open(dir + "/wal");
  std::vector<uint8_t> record(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*wal)->Append(record));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendBuffered)->Arg(21)->Arg(256);

void BM_WalAppendFsync(benchmark::State& state) {
  const std::string dir = FreshDir("wal_sync");
  WriteAheadLog::Options options;
  options.sync_each_append = true;
  auto wal = WriteAheadLog::Open(dir + "/wal", options);
  const std::vector<uint8_t> record(21, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*wal)->Append(record));
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendFsync)->Iterations(200);

void BM_WalReplay(benchmark::State& state) {
  const std::string dir = FreshDir("wal_replay");
  const std::string path = dir + "/wal";
  {
    auto wal = WriteAheadLog::Open(path);
    const std::vector<uint8_t> record(21, 0xcd);
    for (int i = 0; i < 10000; ++i) (void)(*wal)->Append(record);
  }
  for (auto _ : state) {
    uint64_t count = 0;
    (void)WriteAheadLog::Replay(path, [&count](const uint8_t*, size_t) {
      ++count;
      return Status::Ok();
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  fs::remove_all(dir);
}
BENCHMARK(BM_WalReplay);

void BM_DurableCommitWrite(benchmark::State& state) {
  const std::string dir = FreshDir("durable");
  DurableDatabase::Options options;
  options.dir = dir;
  auto db = DurableDatabase::Open(options, 1 << 10);
  TxnId txn = 0;
  for (auto _ : state) {
    ++txn;
    benchmark::DoNotOptimize(
        (*db)->CommitWrite(static_cast<ItemId>(txn & 1023), Value(txn), txn));
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableCommitWrite);

void BM_Checkpoint(benchmark::State& state) {
  const std::string dir = FreshDir("checkpoint");
  DurableDatabase::Options options;
  options.dir = dir;
  auto db = DurableDatabase::Open(options, static_cast<uint32_t>(
                                               state.range(0)));
  for (ItemId item = 0; item < state.range(0); ++item) {
    (void)(*db)->CommitWrite(item, Value(item), item + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Checkpoint());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Arg(50)->Arg(1 << 12);

}  // namespace
}  // namespace miniraid

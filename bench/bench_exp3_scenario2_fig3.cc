// Reproduces Experiment 3 scenario 2 / Figure 3: database inconsistency
// under successive single-site failures, 4 sites. Each site is down for 25
// transactions in turn (processed on the remaining sites); all sites are up
// for transactions 101-160.
//
// Paper observations: each site's curve has the single-site recovery shape;
// because the sites fail singly and in succession, an up-to-date copy of
// every item is always available somewhere, so no transaction aborts.

#include <cstdio>
#include <fstream>

#include "core/experiments.h"
#include "metrics/series.h"

namespace miniraid {
namespace {

void Run(const char* csv_path) {
  ScenarioConfig config;
  config.seed = 1;

  const Exp3Result result = RunExperiment3Scenario2(config);

  std::printf("=== Experiment 3 scenario 2 (Figure 3): database "
              "inconsistency, successive failures ===\n");
  std::printf("config: 4 sites, db=50 items, max txn size=5\n\n");

  std::vector<Series> series(4);
  for (SiteId s = 0; s < 4; ++s) {
    series[s].label = "site " + std::to_string(s);
  }
  for (const TxnRecord& rec : result.scenario.txns) {
    for (SiteId s = 0; s < 4; ++s) {
      series[s].Add(double(rec.txn_no), double(rec.fail_locks_per_site[s]));
    }
  }
  std::printf("%s\n", RenderAsciiChart(series, 72, 16, "transaction number",
                                       "fail-locks")
                          .c_str());
  if (csv_path != nullptr) {
    std::ofstream out(csv_path);
    if (out) {
      WriteCsv(out, "txn", series);
      std::printf("(series written to %s)\n", csv_path);
    }
  }

  std::printf("%-56s %8s %8s\n", "quantity", "paper", "measured");
  for (SiteId s = 0; s < 4; ++s) {
    std::printf("peak fail-locks, site %u%35s %8s %8u\n", s, "", "~25",
                result.peak_per_site[s]);
  }
  std::printf("%-56s %8s %8llu\n",
              "aborted transactions (data unavailable)", "0",
              (unsigned long long)result.scenario.aborted_data_unavailable);
  std::printf("%-56s %8s %8llu\n",
              "aborts while a failure was still undetected", "n/a",
              (unsigned long long)result.scenario.aborted_participant_failure);
  std::printf("%-56s %8s %8s\n", "replica agreement at end", "yes",
              result.scenario.consistency.ok() ? "yes" : "NO");
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Run(argc > 1 ? argv[1] : nullptr);
  return 0;
}

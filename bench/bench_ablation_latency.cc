// Ablation: the Experiment-1 overheads as a function of inter-site message
// latency. The paper's testbed measured 9 ms per interprocess message on
// one machine in 1987; modern substrates range from microseconds
// (same-rack RDMA/IPC) to tens of milliseconds (WAN). Message-bound costs
// (transaction rounds, control transaction type 1 at the recovering site)
// scale with latency; CPU-bound costs (type-1 serving, type 2) do not —
// which is also a sensitivity check on the cost-model calibration.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: overheads vs inter-site message latency ===\n");
  std::printf("config: Experiment-1 setup (4 sites, db=50, max txn size "
              "10), latency swept\n\n");
  std::printf("%-11s %14s %12s %16s %16s %10s\n", "latency", "coord (ms)",
              "part (ms)", "type1 rec (ms)", "type1 op (ms)", "type2 (ms)");

  for (const int64_t ms : {0LL, 1LL, 9LL, 25LL, 100LL}) {
    Exp1Config config;
    config.message_latency = Milliseconds(ms);
    config.measured_txns = 60;
    const Exp1FailLockOverheadResult txn = RunExp1FailLockOverhead(config);
    const Exp1ControlResult control = RunExp1Control(config);
    std::printf("%8lld ms %14.1f %12.1f %16.1f %16.1f %10.1f\n",
                (long long)ms, txn.coord_with_ms, txn.part_with_ms,
                control.type1_recovering_ms, control.type1_operational_ms,
                control.type2_ms);
  }
  std::printf("\nExpected shape: transaction times grow linearly with "
              "latency (four one-way hops\nper 2PC round trip pair). "
              "Type-1-at-recoverer is CPU-dominated at low latency\n(the "
              "operational sites' serialized table formatting) and becomes "
              "latency-bound at\nWAN scales; type-1-at-operational and "
              "type 2 shift only by the single send the\npaper's "
              "accounting includes.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Reproduces Experiment 1 §2.2.1: the overhead of fail-lock maintenance.
// 4 sites, 50-item hot set, max transaction size 10, 9 ms per inter-site
// message, all sites on one shared processor (the paper's testbed). The
// same seeded transaction set runs once with the fail-lock maintenance
// code disabled and once with it enabled, exactly as in the paper.
//
// The cost model is calibrated to the paper's primitive costs (see
// EXPERIMENTS.md); this bench validates that the *compositions* — the
// coordinator and participant transaction times and the maintenance deltas
// — reproduce the published table.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  Exp1Config config;
  const Exp1FailLockOverheadResult result = RunExp1FailLockOverhead(config);

  std::printf("=== Experiment 1 (§2.2.1): overhead for fail-locks "
              "maintenance ===\n");
  std::printf("config: 4 sites, db=50 items, max txn size=10, message "
              "latency=9ms, shared CPU\n\n");
  std::printf("%-36s %12s %12s\n", "", "paper (ms)", "measured (ms)");
  std::printf("%-36s %12s %12.1f\n", "coordinator, without fail-locks",
              "176", result.coord_without_ms);
  std::printf("%-36s %12s %12.1f\n", "coordinator, with fail-locks", "186",
              result.coord_with_ms);
  std::printf("%-36s %12s %12.1f\n", "participant, without fail-locks", "90",
              result.part_without_ms);
  std::printf("%-36s %12s %12.1f\n", "participant, with fail-locks", "97",
              result.part_with_ms);
  std::printf("\n%-36s %12s %12.1f\n", "maintenance delta, coordinator",
              "+10", result.coord_with_ms - result.coord_without_ms);
  std::printf("%-36s %12s %12.1f\n", "maintenance delta, participant", "+7",
              result.part_with_ms - result.part_without_ms);
  std::printf("\nConclusion check: fail-lock maintenance adds only a few "
              "percent to transaction times\n(paper: \"a slight increase in "
              "transaction processing times\").\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Ablation: how the Experiment-1 overheads scale with the number of sites.
// The paper notes that the type-1 control transaction's cost at the
// recovering site "is dependent on the number of sites in the system
// because an intersite communication is needed for each recovery
// announcement," while the type-1 cost at an operational site and the
// type-2 cost are independent of the site count. Transaction times grow
// with the participant count (more copy updates and acks per 2PC round).

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: overheads vs. number of sites (Experiment-1 "
              "configuration) ===\n");
  std::printf("config: db=50, max txn size=10, 9 ms messages, shared CPU\n\n");
  std::printf("%-8s %14s %14s %16s %16s %10s\n", "sites", "coord (ms)",
              "part (ms)", "type1 rec (ms)", "type1 op (ms)", "type2 (ms)");

  for (const uint32_t n : {2u, 3u, 4u, 6u, 8u}) {
    Exp1Config config;
    config.n_sites = n;
    config.measured_txns = 60;
    const Exp1FailLockOverheadResult txn = RunExp1FailLockOverhead(config);
    const Exp1ControlResult control = RunExp1Control(config);
    std::printf("%-8u %14.1f %14.1f %16.1f %16.1f %10.1f\n", n,
                txn.coord_with_ms, txn.part_with_ms,
                control.type1_recovering_ms, control.type1_operational_ms,
                control.type2_ms);
  }
  std::printf("\nExpected shape: coordinator time and type-1-at-recoverer "
              "grow with the site count;\ntype-1-at-operational and type-2 "
              "stay flat (paper §2.2.2).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Availability comparison: the paper's ROWAA protocol against strict
// read-one/write-ALL and majority-quorum consensus, under an identical
// failure schedule. This quantifies the paper's motivating claim: "a
// distributed database system that employs the ROWAA protocol has a higher
// degree of data availability at the operational sites (since failed sites
// can be ignored) and at the recovering sites (due to fail-locks)" (§5).
//
// Expected shape: ROWAA commits nearly everything once failures are
// detected; strict ROWA aborts every update while any site is down; quorum
// sits in between (full availability under minority failure, but pays
// quorum messages on every read and dies with the majority).

#include <cstdio>

#include "baselines/baseline_cluster.h"
#include "core/experiments.h"

namespace miniraid {
namespace {

struct Tally {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t unreachable = 0;
  uint64_t messages = 0;
  uint64_t txns = 0;

  void Count(const TxnResult& reply) {
    ++txns;
    switch (reply.outcome) {
      case TxnOutcome::kCommitted:
        ++committed;
        break;
      case TxnOutcome::kCoordinatorUnreachable:
        ++unreachable;
        break;
      default:
        ++aborted;
        break;
    }
  }
};

// One failure schedule: for each site in turn — fail it, run 20
// transactions on the survivors, recover it, run 10 on everyone. Then a
// double-failure episode (sites 0 and 1 down together) with 20
// transactions, which kills strict ROWA and stresses quorum (with n=4,
// majority=3, so a double failure blocks quorum too — ROWAA alone keeps
// committing).
template <typename Cluster>
Tally Drive(Cluster& cluster, uint32_t n_sites, uint64_t seed) {
  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 5;
  wopts.seed = seed;
  UniformWorkload workload(wopts);
  Rng rng(seed ^ 0xfeed);
  Tally tally;

  auto pick_up = [&]() -> SiteId {
    const std::vector<SiteId> up = cluster.UpSites();
    if (up.empty()) return 0;
    return up[rng.NextBounded(up.size())];
  };
  auto run = [&](uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      tally.Count(cluster.RunTxn(workload.Next(), pick_up()));
    }
  };

  for (SiteId victim = 0; victim < n_sites; ++victim) {
    cluster.Fail(victim);
    run(20);
    cluster.Recover(victim);
    run(10);
  }
  cluster.Fail(0);
  cluster.Fail(1);
  run(20);
  cluster.Recover(0);
  cluster.Recover(1);
  run(10);
  tally.messages = cluster.messages_sent();
  return tally;
}

void Run() {
  constexpr uint32_t kSites = 4;
  constexpr uint64_t kSeed = 11;

  std::printf("=== Baseline comparison: availability under an identical "
              "failure schedule ===\n");
  std::printf("config: 4 sites, db=50, max txn size=5; single failures for "
              "20 txns each,\nthen a double failure (quorum majority=3 "
              "blocks; strict ROWA blocks on any failure)\n\n");
  std::printf("%-14s %10s %10s %12s %12s %12s\n", "protocol", "committed",
              "aborted", "unreachable", "commit rate", "msgs/txn");

  auto print_row = [](const char* name, const Tally& tally) {
    std::printf("%-14s %10llu %10llu %12llu %11.1f%% %12.1f\n", name,
                (unsigned long long)tally.committed,
                (unsigned long long)tally.aborted,
                (unsigned long long)tally.unreachable,
                100.0 * double(tally.committed) / double(tally.txns),
                double(tally.messages) / double(tally.txns));
  };

  {
    ClusterOptions options;
    options.n_sites = kSites;
    options.db_size = 50;
    options.managing.client_timeout = Seconds(8);
    auto cluster_owner = MakeSimCluster(options);
    SimCluster& cluster = *cluster_owner;
    print_row("ROWAA (paper)", Drive(cluster, kSites, kSeed));
  }
  for (const BaselineKind kind :
       {BaselineKind::kRowaStrict, BaselineKind::kQuorum}) {
    BaselineClusterOptions options;
    options.n_sites = kSites;
    options.db_size = 50;
    options.kind = kind;
    options.managing.client_timeout = Seconds(8);
    BaselineCluster cluster(options);
    print_row(kind == BaselineKind::kRowaStrict ? "ROWA (strict)" : "quorum",
              Drive(cluster, kSites, kSeed));
  }
  std::printf("\nExpected shape: ROWAA >> quorum > strict ROWA on commit "
              "rate under failures;\nquorum pays extra messages per "
              "transaction for its read quorums.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

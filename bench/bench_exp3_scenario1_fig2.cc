// Reproduces Experiment 3 scenario 1 / Figure 2: database inconsistency
// under alternating site failures, 2 sites. Site 0 is down for transactions
// 1-25 (processed on site 1); site 0 comes up and site 1 goes down for
// transactions 26-50 (processed on site 0, which is itself still
// recovering); both are up for transactions 51-120.
//
// Paper observations: each site's fail-lock curve has the single-site
// recovery shape; during 26-50 some of site 0's fail-locked items are
// totally unavailable (the only fresh copy is on the down site 1), forcing
// site 0 to abort 13 transactions whose reads demanded copier transactions
// that no operational site could serve.

#include <cstdio>
#include <fstream>

#include "core/experiments.h"
#include "metrics/series.h"

namespace miniraid {
namespace {

void Run(const char* csv_path) {
  ScenarioConfig config;
  config.seed = 2;

  const Exp3Result result = RunExperiment3Scenario1(config);

  std::printf("=== Experiment 3 scenario 1 (Figure 2): database "
              "inconsistency, alternating failures ===\n");
  std::printf("config: 2 sites, db=50 items, max txn size=5\n\n");

  Series s0{"site 0", {}, {}};
  Series s1{"site 1", {}, {}};
  for (const TxnRecord& rec : result.scenario.txns) {
    s0.Add(double(rec.txn_no), double(rec.fail_locks_per_site[0]));
    s1.Add(double(rec.txn_no), double(rec.fail_locks_per_site[1]));
  }
  std::printf("%s\n", RenderAsciiChart({s0, s1}, 72, 16,
                                       "transaction number", "fail-locks")
                          .c_str());
  if (csv_path != nullptr) {
    std::ofstream out(csv_path);
    if (out) {
      WriteCsv(out, "txn", {s0, s1});
      std::printf("(series written to %s)\n", csv_path);
    }
  }

  std::printf("%-56s %8s %8s\n", "quantity", "paper", "measured");
  std::printf("%-56s %8s %8u\n", "peak fail-locks, site 0", "~25",
              result.peak_per_site[0]);
  std::printf("%-56s %8s %8u\n", "peak fail-locks, site 1", "~25",
              result.peak_per_site[1]);
  std::printf("%-56s %8s %8llu\n",
              "aborts at site 0 (no up-to-date copy reachable)", "13",
              (unsigned long long)result.scenario.aborts_by_coordinator[0]);
  std::printf("%-56s %8s %8s\n", "replica agreement at end", "yes",
              result.scenario.consistency.ok() ? "yes" : "NO");

  // Multi-seed summary for the abort count.
  double aborts_sum = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioConfig c = config;
    c.seed = seed;
    aborts_sum += double(
        RunExperiment3Scenario1(c).scenario.aborts_by_coordinator[0]);
  }
  std::printf("\n10-seed mean aborts at site 0: %.1f (paper: 13)\n",
              aborts_sum / 10);
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Run(argc > 1 ? argv[1] : nullptr);
  return 0;
}

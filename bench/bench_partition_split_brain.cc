// Negative result the paper's protocol family is known for: ROWAA assumes
// *site* failures, not network partitions. Under a partition, both sides
// believe the other side failed, keep writing "all available copies", and
// the replicas diverge (split brain). Majority-quorum consensus refuses the
// minority side and stays single-copy-consistent.
//
// This bench runs the same partition episode against both protocols and
// reports commits on each side plus the number of items whose copies
// diverged after the network heals.

#include <cstdio>

#include "baselines/baseline_cluster.h"
#include "core/cluster.h"
#include "net/partition.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

constexpr uint32_t kSites = 4;     // partition: {0,1} | {2,3}
constexpr uint32_t kDbSize = 20;

struct EpisodeResult {
  uint64_t committed_side_a = 0;
  uint64_t committed_side_b = 0;
  uint32_t diverged_items = 0;
};

template <typename Cluster, typename ReadValue>
EpisodeResult Drive(Cluster& cluster, PartitionController& partition,
                    ReadValue read_value, uint64_t seed) {
  UniformWorkloadOptions wopts;
  wopts.db_size = kDbSize;
  wopts.max_txn_size = 4;
  wopts.seed = seed;
  UniformWorkload workload(wopts);
  Rng rng(seed);

  // Warm up connected.
  for (int i = 0; i < 10; ++i) {
    (void)cluster.RunTxn(workload.Next(), static_cast<SiteId>(i % kSites));
  }

  partition.Split({{0, 1}, {2, 3}});
  EpisodeResult result;
  for (int i = 0; i < 40; ++i) {
    // Alternate sides; each side coordinates within itself.
    const bool side_a = i % 2 == 0;
    const SiteId coordinator =
        side_a ? static_cast<SiteId>(rng.NextBounded(2))
               : static_cast<SiteId>(2 + rng.NextBounded(2));
    const TxnResult reply = cluster.RunTxn(workload.Next(), coordinator);
    if (reply.outcome == TxnOutcome::kCommitted) {
      (side_a ? result.committed_side_a : result.committed_side_b) += 1;
    }
  }
  partition.Heal();

  for (ItemId item = 0; item < kDbSize; ++item) {
    const Value a = read_value(0, item);
    const Value b = read_value(2, item);
    if (a != b) ++result.diverged_items;
  }
  return result;
}

void Run() {
  constexpr uint64_t kSeed = 4;
  std::printf("=== Partition episode: ROWAA split brain vs quorum safety "
              "===\n");
  std::printf("config: 4 sites, partition {0,1} | {2,3}, 40 txns during the "
              "split\n\n");
  std::printf("%-14s %16s %16s %18s\n", "protocol", "commits side A",
              "commits side B", "diverged items");

  {
    PartitionController partition;
    ClusterOptions options;
    options.n_sites = kSites;
    options.db_size = kDbSize;
    options.transport.drop_filter = partition.Filter();
    options.managing.client_timeout = Seconds(8);
    auto cluster_owner = MakeSimCluster(options);
    SimCluster& cluster = *cluster_owner;
    const EpisodeResult r = Drive(
        cluster, partition,
        [&cluster](SiteId site, ItemId item) {
          return cluster.site(site).db().Read(item)->value;
        },
        kSeed);
    std::printf("%-14s %16llu %16llu %18u   <- SPLIT BRAIN\n",
                "ROWAA (paper)", (unsigned long long)r.committed_side_a,
                (unsigned long long)r.committed_side_b, r.diverged_items);
  }
  {
    PartitionController partition;
    BaselineClusterOptions options;
    options.n_sites = kSites;
    options.db_size = kDbSize;
    options.kind = BaselineKind::kQuorum;
    options.transport.drop_filter = partition.Filter();
    options.managing.client_timeout = Seconds(8);
    BaselineCluster cluster(options);
    // With 4 sites the majority is 3: neither 2-site half can assemble a
    // quorum, so writes stop everywhere — consistent but unavailable.
    const EpisodeResult r = Drive(
        cluster, partition,
        [](SiteId, ItemId) { return Value{0}; },  // nothing can diverge
        kSeed);
    std::printf("%-14s %16llu %16llu %18u\n", "quorum",
                (unsigned long long)r.committed_side_a,
                (unsigned long long)r.committed_side_b, 0u);
  }
  std::printf(
      "\nExpected shape: ROWAA keeps committing on BOTH sides and diverges "
      "(it assumes\npartitions cannot happen — the paper's reliable-network "
      "assumption 1); quorum\nrefuses both halves of an even split (no "
      "majority) and never diverges.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

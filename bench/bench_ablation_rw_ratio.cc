// Ablation for the paper's §5 discussion of the 50/50 read-write mix:
// "A fail lock is set for each down site every time a write operation is
// performed ... this reduces our data availability more quickly ...
// however, this assumption also has the effect of increasing data
// availability more quickly during recovery ... If reads occur more
// commonly than writes then more copier transactions would probably be
// requested by a recovering site during recovery."
//
// This bench sweeps the write fraction over the Figure-1 scenario (with a
// meaningful share of transactions routed to the recovering site so the
// read-driven copier effect is visible).

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: read/write mix (paper §5 discussion) ===\n");
  std::printf("config: Figure-1 scenario, recovering-site coordinator "
              "weight=0.5\n\n");
  std::printf("%-14s %12s %18s %16s\n", "write frac", "peak locks",
              "txns to recover", "demand copiers");

  for (const double wf : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double peak = 0, txns = 0, copiers = 0;
    constexpr int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Exp2Config config;
      config.scenario.seed = seed;
      config.scenario.write_fraction = wf;
      config.recovering_site_weight = 0.5;
      config.recovery_cap = 20000;
      const Exp2Result result = RunExperiment2(config);
      peak += result.peak_fail_locks;
      txns += result.txns_to_full_recovery;
      copiers += result.copier_txns;
    }
    std::printf("%-14.1f %12.0f %18.0f %16.1f\n", wf, peak / kSeeds,
                txns / kSeeds, copiers / kSeeds);
  }
  std::printf("\nExpected shape: fewer writes => fewer fail-locks set while "
              "down (higher availability\nduring failure) but slower "
              "write-driven clearing, so reads drive recovery through\n"
              "copier transactions — exactly the paper's §5 prediction.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Microbenchmarks for the wire codec: encode/decode of the messages the
// protocol sends most often (phase-1 copy updates, copy replies, recovery
// info with a full fail-lock table), the group-commit batch frames against
// their singleton equivalents, and the pooled buffer-reuse encode path.

#include <benchmark/benchmark.h>

#include "msg/codec.h"
#include "msg/message.h"
#include "txn/transaction.h"

namespace miniraid {
namespace {

Message MakePrepare(size_t n_writes) {
  PrepareArgs args;
  args.txn = 123456;
  for (size_t i = 0; i < n_writes; ++i) {
    args.writes.push_back(
        ItemWrite{static_cast<ItemId>(i), static_cast<Value>(i * 7919)});
  }
  return MakeMessage(0, 1, std::move(args));
}

Message MakeRecoveryInfo(size_t n_items) {
  RecoveryInfoArgs args;
  for (size_t i = 0; i < 4; ++i) {
    args.session_vector.push_back(SessionEntryWire{i + 1, SiteStatus::kUp});
  }
  for (size_t i = 0; i < n_items; ++i) {
    args.fail_locks.push_back(FailLockRow{static_cast<ItemId>(i), 0b1010});
  }
  return MakeMessage(0, 1, std::move(args));
}

void BM_EncodePrepare(benchmark::State& state) {
  const Message msg = MakePrepare(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMessage(msg));
  }
}
BENCHMARK(BM_EncodePrepare)->Arg(3)->Arg(50);

void BM_DecodePrepare(benchmark::State& state) {
  const std::vector<uint8_t> wire =
      EncodeMessage(MakePrepare(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(wire.size()));
}
BENCHMARK(BM_DecodePrepare)->Arg(3)->Arg(50);

void BM_RoundTripRecoveryInfo(benchmark::State& state) {
  const Message msg = MakeRecoveryInfo(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(EncodeMessage(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RoundTripRecoveryInfo)->Arg(50)->Arg(4096);

void BM_RoundTripTxnRequest(benchmark::State& state) {
  TxnRequestArgs args;
  args.txn.id = 99;
  for (int i = 0; i < 10; ++i) {
    if (i % 2) {
      args.txn.ops.push_back(Operation::Write(i, WriteValueFor(99, i)));
    } else {
      args.txn.ops.push_back(Operation::Read(i));
    }
  }
  const Message msg = MakeMessage(4, 0, std::move(args));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(EncodeMessage(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RoundTripTxnRequest);

Message MakeBatchPrepare(size_t n_members, size_t writes_per_member) {
  BatchPrepareArgs args;
  args.batch = 42;
  for (size_t i = 0; i < 4; ++i) {
    args.session_vector.push_back(SessionEntryWire{i + 1, SiteStatus::kUp});
  }
  args.participants = {0, 1, 2, 3};
  for (size_t m = 0; m < n_members; ++m) {
    BatchMember member;
    member.txn = 1000 + m;
    for (size_t i = 0; i < writes_per_member; ++i) {
      member.writes.push_back(ItemWrite{static_cast<ItemId>(m * 7 + i),
                                        static_cast<Value>(i * 7919)});
    }
    args.members.push_back(std::move(member));
  }
  return MakeMessage(0, 1, std::move(args));
}

/// One batch frame carrying N members...
void BM_EncodeBatchPrepare(benchmark::State& state) {
  const Message msg =
      MakeBatchPrepare(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMessage(msg));
  }
}
BENCHMARK(BM_EncodeBatchPrepare)->Arg(2)->Arg(16);

/// ...against the N singleton Prepare frames it replaces (same session
/// vector and participant list repeated per frame — the wire bytes group
/// commit saves).
void BM_EncodeEquivalentSingletonPrepares(benchmark::State& state) {
  std::vector<Message> singles;
  for (int64_t m = 0; m < state.range(0); ++m) {
    PrepareArgs args;
    args.txn = 1000 + static_cast<TxnId>(m);
    for (size_t i = 0; i < 3; ++i) {
      args.writes.push_back(ItemWrite{static_cast<ItemId>(m * 7 + i),
                                      static_cast<Value>(i * 7919)});
    }
    for (size_t i = 0; i < 4; ++i) {
      args.session_vector.push_back(SessionEntryWire{i + 1, SiteStatus::kUp});
    }
    args.participants = {0, 1, 2, 3};
    singles.push_back(MakeMessage(0, 1, std::move(args)));
  }
  for (auto _ : state) {
    for (const Message& msg : singles) {
      benchmark::DoNotOptimize(EncodeMessage(msg));
    }
  }
}
BENCHMARK(BM_EncodeEquivalentSingletonPrepares)->Arg(2)->Arg(16);

void BM_DecodeBatchPrepare(benchmark::State& state) {
  const std::vector<uint8_t> wire =
      EncodeMessage(MakeBatchPrepare(static_cast<size_t>(state.range(0)), 3));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(wire.size()));
}
BENCHMARK(BM_DecodeBatchPrepare)->Arg(2)->Arg(16);

/// The retransmit-path allocation question: EncodeMessage allocates a fresh
/// vector per frame; EncodeMessageInto on a FramePool buffer reuses the
/// same storage in steady state.
void BM_EncodePreparePooled(benchmark::State& state) {
  const Message msg = MakePrepare(static_cast<size_t>(state.range(0)));
  FramePool pool;
  for (auto _ : state) {
    Encoder enc = pool.Acquire();
    EncodeMessageInto(msg, enc);
    benchmark::DoNotOptimize(enc.buffer().data());
    pool.Release(enc.TakeBuffer());
  }
}
BENCHMARK(BM_EncodePreparePooled)->Arg(3)->Arg(50);

/// The PutFixed hot loop in isolation (the memcpy rewrite of the old
/// byte-at-a-time append).
void BM_PutFixedBulk(benchmark::State& state) {
  Encoder enc;
  for (auto _ : state) {
    enc.Clear();
    for (int i = 0; i < 64; ++i) {
      enc.PutU64(0x0123456789abcdefULL + static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 64 * 8);
}
BENCHMARK(BM_PutFixedBulk);

}  // namespace
}  // namespace miniraid

// Microbenchmarks for the wire codec: encode/decode of the messages the
// protocol sends most often (phase-1 copy updates, copy replies, recovery
// info with a full fail-lock table).

#include <benchmark/benchmark.h>

#include "msg/message.h"
#include "txn/transaction.h"

namespace miniraid {
namespace {

Message MakePrepare(size_t n_writes) {
  PrepareArgs args;
  args.txn = 123456;
  for (size_t i = 0; i < n_writes; ++i) {
    args.writes.push_back(
        ItemWrite{static_cast<ItemId>(i), static_cast<Value>(i * 7919)});
  }
  return MakeMessage(0, 1, std::move(args));
}

Message MakeRecoveryInfo(size_t n_items) {
  RecoveryInfoArgs args;
  for (size_t i = 0; i < 4; ++i) {
    args.session_vector.push_back(SessionEntryWire{i + 1, SiteStatus::kUp});
  }
  for (size_t i = 0; i < n_items; ++i) {
    args.fail_locks.push_back(FailLockRow{static_cast<ItemId>(i), 0b1010});
  }
  return MakeMessage(0, 1, std::move(args));
}

void BM_EncodePrepare(benchmark::State& state) {
  const Message msg = MakePrepare(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMessage(msg));
  }
}
BENCHMARK(BM_EncodePrepare)->Arg(3)->Arg(50);

void BM_DecodePrepare(benchmark::State& state) {
  const std::vector<uint8_t> wire =
      EncodeMessage(MakePrepare(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(wire.size()));
}
BENCHMARK(BM_DecodePrepare)->Arg(3)->Arg(50);

void BM_RoundTripRecoveryInfo(benchmark::State& state) {
  const Message msg = MakeRecoveryInfo(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(EncodeMessage(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RoundTripRecoveryInfo)->Arg(50)->Arg(4096);

void BM_RoundTripTxnRequest(benchmark::State& state) {
  TxnRequestArgs args;
  args.txn.id = 99;
  for (int i = 0; i < 10; ++i) {
    if (i % 2) {
      args.txn.ops.push_back(Operation::Write(i, WriteValueFor(99, i)));
    } else {
      args.txn.ops.push_back(Operation::Read(i));
    }
  }
  const Message msg = MakeMessage(4, 0, std::move(args));
  for (auto _ : state) {
    Result<Message> decoded = DecodeMessage(EncodeMessage(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RoundTripTxnRequest);

}  // namespace
}  // namespace miniraid

// Reproduces Experiment 2 / Figure 1 of Bhargava, Noll & Sabo: data
// availability on a recovering site. Two sites, 50-item hot set, max
// transaction size 5. Site 0 fails before transaction 1; transactions
// 1-100 run on site 1 (fail-locking most of site 0's copies); site 0 then
// recovers and transactions run until every fail-lock clears.
//
// Paper observations reproduced here: >90% of copies fail-locked after 100
// transactions; ~160 further transactions to full recovery; the first 10
// fail-locks clear in ~6 transactions while the last 10 take ~106; only 2
// copier transactions are requested during recovery.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/strings.h"
#include "core/experiments.h"
#include "metrics/series.h"

namespace miniraid {
namespace {

void MaybeWriteCsv(const char* path, const std::vector<Series>& series) {
  if (path == nullptr) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  WriteCsv(out, "txn", series);
  std::printf("(series written to %s)\n", path);
}

void Run(const char* csv_path) {
  Exp2Config config;
  config.scenario.seed = 5;

  const Exp2Result result = RunExperiment2(config);

  std::printf("=== Experiment 2 (Figure 1): data availability during "
              "failure and recovery ===\n");
  std::printf("config: 2 sites, db=50 items, max txn size=5, "
              "R/W mix=50/50, recovering-site coordinator weight=%.2f\n\n",
              config.recovering_site_weight);

  Series curve;
  curve.label = "fail-locks set for site 0";
  for (const TxnRecord& rec : result.scenario.txns) {
    curve.Add(double(rec.txn_no), double(rec.fail_locks_per_site[0]));
  }
  std::printf("%s\n",
              RenderAsciiChart({curve}, 72, 18, "transaction number",
                               "fail-locks")
                  .c_str());
  MaybeWriteCsv(csv_path, {curve});

  std::printf("%-52s %10s %10s\n", "quantity", "paper", "measured");
  std::printf("%-52s %10s %10u\n",
              "fail-locked copies after 100 txns (of 50)", ">45",
              result.peak_fail_locks);
  std::printf("%-52s %10s %10u\n", "txns to complete recovery", "~160",
              result.txns_to_full_recovery);
  std::printf("%-52s %10s %10u\n", "txns to clear first 10 fail-locks", "6",
              result.first10_txns);
  std::printf("%-52s %10s %10u\n", "txns to clear last 10 fail-locks", "106",
              result.last10_txns);
  std::printf("%-52s %10s %10u\n", "copier txns during recovery", "2",
              result.copier_txns);
  std::printf("%-52s %10s %10s\n", "replica agreement at end", "yes",
              result.scenario.consistency.ok() ? "yes" : "NO");
  std::printf("\n");

  // The paper reports one trace; the tail of the recovery is a coupon-
  // collector time with large variance, so also report a 10-seed summary.
  std::printf("10-seed summary (the paper's run is one draw from this "
              "distribution):\n");
  double total_sum = 0, last10_sum = 0, first10_sum = 0, copier_sum = 0;
  uint32_t total_min = ~0u, total_max = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Exp2Config c = config;
    c.scenario.seed = seed;
    const Exp2Result r = RunExperiment2(c);
    total_sum += r.txns_to_full_recovery;
    first10_sum += r.first10_txns;
    last10_sum += r.last10_txns;
    copier_sum += r.copier_txns;
    total_min = std::min(total_min, r.txns_to_full_recovery);
    total_max = std::max(total_max, r.txns_to_full_recovery);
  }
  std::printf("  txns to full recovery: mean=%.0f min=%u max=%u "
              "(paper: 160)\n",
              total_sum / 10, total_min, total_max);
  std::printf("  first 10 fail-locks:   mean=%.0f txns (paper: 6)\n",
              first10_sum / 10);
  std::printf("  last 10 fail-locks:    mean=%.0f txns (paper: 106)\n",
              last10_sum / 10);
  std::printf("  copier transactions:   mean=%.1f (paper: 2)\n",
              copier_sum / 10);
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  // Optional argument: a path to dump the Figure-1 series as CSV.
  miniraid::Run(argc > 1 ? argv[1] : nullptr);
  return 0;
}

// Microbenchmarks for the fail-lock table — the paper's implementation
// note: "we implemented fail-locks with a bit map for each data item ...
// this implementation allowed the fail-lock operations to be performed
// very quickly." These benchmarks quantify "very quickly" on modern
// hardware and cover the operations the protocol performs per commit,
// per recovery, and per copier transaction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "replication/fail_locks.h"

namespace miniraid {
namespace {

void BM_FailLockSetClear(benchmark::State& state) {
  const uint32_t n_items = static_cast<uint32_t>(state.range(0));
  FailLockTable table(n_items, 8);
  Rng rng(42);
  for (auto _ : state) {
    const ItemId item = static_cast<ItemId>(rng.NextBounded(n_items));
    const SiteId site = static_cast<SiteId>(rng.NextBounded(8));
    benchmark::DoNotOptimize(table.Set(item, site));
    benchmark::DoNotOptimize(table.Clear(item, site));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FailLockSetClear)->Arg(50)->Arg(1 << 12)->Arg(1 << 16);

void BM_FailLockMaintainCommit(benchmark::State& state) {
  // The per-commit maintenance loop: for each written item, set/clear the
  // bit of every site per the session vector (4 sites, ~3 written items —
  // the paper's experiment-1 shape).
  FailLockTable table(50, 4);
  Rng rng(7);
  for (auto _ : state) {
    for (int w = 0; w < 3; ++w) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(50));
      for (SiteId s = 0; s < 4; ++s) {
        if (s == 3) {
          benchmark::DoNotOptimize(table.Set(item, s));
        } else {
          benchmark::DoNotOptimize(table.Clear(item, s));
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_FailLockMaintainCommit);

void BM_FailLockCountForSite(benchmark::State& state) {
  const uint32_t n_items = static_cast<uint32_t>(state.range(0));
  FailLockTable table(n_items, 8);
  Rng rng(42);
  for (uint32_t i = 0; i < n_items / 2; ++i) {
    table.Set(static_cast<ItemId>(rng.NextBounded(n_items)),
              static_cast<SiteId>(rng.NextBounded(8)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.CountForSite(3));
  }
}
BENCHMARK(BM_FailLockCountForSite)->Arg(50)->Arg(1 << 16);

void BM_FailLockItemsLockedFor(benchmark::State& state) {
  const uint32_t n_items = static_cast<uint32_t>(state.range(0));
  FailLockTable table(n_items, 8);
  Rng rng(42);
  for (uint32_t i = 0; i < n_items / 2; ++i) {
    table.Set(static_cast<ItemId>(rng.NextBounded(n_items)), 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.ItemsLockedFor(3));
  }
}
BENCHMARK(BM_FailLockItemsLockedFor)->Arg(50)->Arg(1 << 12);

void BM_FailLockWireRoundTrip(benchmark::State& state) {
  // Control transaction type 1 serializes the whole table; this is the
  // operational site's dominant cost in the paper (§2.2.2).
  const uint32_t n_items = static_cast<uint32_t>(state.range(0));
  FailLockTable table(n_items, 8);
  Rng rng(42);
  for (uint32_t i = 0; i < n_items; ++i) {
    table.Set(static_cast<ItemId>(rng.NextBounded(n_items)),
              static_cast<SiteId>(rng.NextBounded(8)));
  }
  for (auto _ : state) {
    FailLockTable fresh(n_items, 8);
    benchmark::DoNotOptimize(fresh.MergeFrom(table.ToWire()));
  }
}
BENCHMARK(BM_FailLockWireRoundTrip)->Arg(50)->Arg(1 << 12);

}  // namespace
}  // namespace miniraid

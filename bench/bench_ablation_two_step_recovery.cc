// Ablation for the paper's §3.2 proposal: two-step recovery. "Once the
// percentage of copies fail-locked drops below the threshold the site
// enters step two of its recovery [and] begins to issue copier
// transactions in a 'batch' mode ... this causes the out-of-date copies to
// be refreshed and hastens the completion of recovery."
//
// This bench sweeps the step-two threshold over the Figure-1 scenario. The
// paper's measured implementation is threshold = 0 (no batch mode, ~160
// transactions to recover, dominated by the coupon-collector tail);
// threshold = 1 refreshes everything proactively the moment the site is
// back up.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: two-step recovery threshold (paper §3.2 "
              "proposal) ===\n");
  std::printf("config: Figure-1 scenario (2 sites, db=50, max txn size=5, "
              "100 txns while down)\n\n");
  std::printf("%-12s %18s %16s %16s\n", "threshold", "txns to recover",
              "batch copiers", "demand copiers");

  for (const double threshold : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    double txns = 0, batch = 0, demand = 0;
    constexpr int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Exp2Config config;
      config.scenario.seed = seed;
      config.scenario.site.batch_copier_threshold = threshold;
      config.scenario.site.batch_copier_chunk = 10;
      const Exp2Result result = RunExperiment2(config);
      txns += result.txns_to_full_recovery;
      batch += double(result.scenario.batch_copiers_total);
      demand += result.copier_txns;
    }
    std::printf("%-12.2f %18.0f %16.1f %16.1f\n", threshold, txns / kSeeds,
                batch / kSeeds, demand / kSeeds);
  }
  std::printf("\nExpected shape: higher thresholds trade batch copier "
              "traffic for a much shorter\nrecovery period (greater fault "
              "tolerance: fewer chances for the last fresh copy\nto fail "
              "before the recovering site refreshes, §3.2).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

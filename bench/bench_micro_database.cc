// Microbenchmarks for the in-memory versioned store.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "db/database.h"

namespace miniraid {
namespace {

void BM_DatabaseRead(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Database db(n);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Read(static_cast<ItemId>(rng.NextBounded(n))));
  }
}
BENCHMARK(BM_DatabaseRead)->Arg(50)->Arg(1 << 16);

void BM_DatabaseCommitWrite(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Database db(n);
  Rng rng(1);
  TxnId txn = 0;
  for (auto _ : state) {
    const ItemId item = static_cast<ItemId>(rng.NextBounded(n));
    ++txn;
    benchmark::DoNotOptimize(
        db.CommitWrite(item, static_cast<Value>(txn), txn));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatabaseCommitWrite)->Arg(50)->Arg(1 << 16);

void BM_DatabaseInstallCopy(benchmark::State& state) {
  Database db(1 << 12);
  Rng rng(1);
  Version v = 0;
  for (auto _ : state) {
    const ItemId item = static_cast<ItemId>(rng.NextBounded(1 << 12));
    ++v;
    benchmark::DoNotOptimize(
        db.InstallCopy(item, ItemState{static_cast<Value>(v), v}));
  }
}
BENCHMARK(BM_DatabaseInstallCopy);

}  // namespace
}  // namespace miniraid

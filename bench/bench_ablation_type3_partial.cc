// Ablation for the paper's §3.2 proposal: control transaction type 3 under
// partial replication. "A site having the last up-to-date copy of a data
// item would create a copy on a back-up site that has no copy of that data
// item. This increased data availability would have the cost of the type 3
// control transaction."
//
// Setup: 3 sites, 30 items, replication factor 2 (item i lives on sites
// i%3 and (i+1)%3). Site 0 fails; items placed on {0,1} now have their last
// fresh copy on site 1. With type 3 enabled, site 1 backs those copies up
// to site 2 the moment it learns of the failure. Site 1 then fails too:
// with backups, site 2 keeps serving everything; without, reads of {0,1}
// items have no reachable copy and abort.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

struct Outcome {
  uint64_t committed = 0;
  uint64_t data_unavailable = 0;
  uint64_t other_aborts = 0;
  uint64_t backups_created = 0;
};

Outcome Drive(bool enable_type3, uint64_t seed) {
  ClusterOptions options;
  options.n_sites = 3;
  options.db_size = 30;
  options.site.enable_type3 = enable_type3;
  options.site.placement.resize(3);
  for (ItemId item = 0; item < 30; ++item) {
    options.site.placement[item % 3].push_back(item);
    options.site.placement[(item + 1) % 3].push_back(item);
  }
  options.managing.client_timeout = Seconds(8);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = 30;
  wopts.max_txn_size = 5;
  wopts.seed = seed;
  UniformWorkload workload(wopts);
  Rng rng(seed);

  Outcome outcome;
  auto run = [&](uint32_t count, std::vector<SiteId> coords) {
    for (uint32_t i = 0; i < count; ++i) {
      const SiteId coord = coords[rng.NextBounded(coords.size())];
      const TxnResult reply = cluster.RunTxn(workload.Next(), coord);
      switch (reply.outcome) {
        case TxnOutcome::kCommitted:
          ++outcome.committed;
          break;
        case TxnOutcome::kAbortedCopierFailed:
          ++outcome.data_unavailable;
          break;
        default:
          ++outcome.other_aborts;
          break;
      }
    }
  };

  run(10, {0, 1, 2});  // warm, all up
  cluster.Fail(0);
  run(20, {1, 2});  // failure detected; type 3 fires here when enabled
  cluster.Fail(1);
  run(40, {2});  // only site 2 left
  for (SiteId s = 0; s < 3; ++s) {
    outcome.backups_created +=
        cluster.site(s).counters().control3_copies_installed;
  }
  return outcome;
}

void Run() {
  std::printf("=== Ablation: control transaction type 3 under partial "
              "replication (paper §3.2) ===\n");
  std::printf("config: 3 sites, 30 items, replication factor 2; site 0 "
              "fails, then site 1\n\n");
  std::printf("%-12s %10s %22s %14s %14s\n", "type 3", "committed",
              "data-unavail aborts", "other aborts", "backups made");
  for (const bool enabled : {false, true}) {
    const Outcome outcome = Drive(enabled, /*seed=*/17);
    std::printf("%-12s %10llu %22llu %14llu %14llu\n",
                enabled ? "enabled" : "disabled",
                (unsigned long long)outcome.committed,
                (unsigned long long)outcome.data_unavailable,
                (unsigned long long)outcome.other_aborts,
                (unsigned long long)outcome.backups_created);
  }
  std::printf("\nExpected shape: with type 3, the last-copy holder backs "
              "its endangered items up\nbefore it fails, eliminating the "
              "data-unavailability aborts at the survivor.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Ablation for the intra-site concurrency extension: what the per-item 2PL
// lock manager buys when ONE coordinator site runs many transactions
// through execute -> prepare -> commit concurrently, versus the serial
// engine (one coordination at a time, everything else queued).
//
// Section 1 sweeps ConcurrencyOptions::max_executors through a single
// coordinator on the simulator (9 ms message latency, one CPU per site,
// zero CPU costs — the latency-dominated regime where overlap is the whole
// story). Serial mode spends every message round-trip idle; two-phase
// locking overlaps the rounds of independent transactions while per-item
// locks keep conflicting ones ordered. The gate requires > 5x committed
// txn/s over serial at max_executors=16 with replicas convergent (zero
// invariant violations).
//
// Section 2 ablates the deadlock policy (wait-die / wound-wait / timeout)
// under heavy contention: same workload, same executors, different ways to
// break lock waits, each with its own abort signature.
//
//   bench_ablation_locking [--smoke] [--json[=PATH]]
//
// --smoke shrinks the phases for CI; --json writes one JSON object with the
// section-1 sweep and the gate verdict (default path BENCH_concurrency.json).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/cluster.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Config {
  uint32_t txns = 300;
  uint32_t contended_txns = 200;
  std::string json_path;  // empty = no JSON output
};

struct SweepRow {
  uint32_t executors = 0;
  bool locking = false;
  DriverReport report;
  uint64_t lock_waits = 0;
  uint64_t aborts_conflict = 0;
  bool replicas_agree = false;
};

ClusterOptions BaseOptions(uint32_t db_size) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = db_size;
  options.site.ack_timeout = Seconds(5);
  options.sim.shared_cpu = false;  // a site per machine: real overlap
  options.transport.message_latency = Milliseconds(9);
  return options;
}

// -- section 1: executor sweep through one coordinator ----------------------

SweepRow MeasureSweep(bool locking, uint32_t executors, uint32_t txns) {
  ClusterOptions options = BaseOptions(/*db_size=*/64);
  options.site.concurrency.mode = locking ? ConcurrencyMode::kTwoPhaseLocking
                                          : ConcurrencyMode::kSerial;
  options.site.concurrency.max_executors = executors;
  // Keep the admission queue fed but below the site's queue bound.
  const uint32_t window = std::min(2 * executors, 48u);
  options.max_inflight = window;
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  UniformWorkloadOptions wopts;
  wopts.db_size = 64;
  wopts.max_txn_size = 3;
  wopts.seed = 7;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = window;
  dopts.measure_txns = txns;
  dopts.coordinator_for = [](uint64_t) { return SiteId{0}; };  // ONE site

  SweepRow row;
  row.executors = executors;
  row.locking = locking;
  row.report = Driver(&cluster, &workload, dopts).Run();
  const SiteCounters& counters = cluster.site(0).counters();
  row.lock_waits = counters.lock_waits;
  row.aborts_conflict = counters.txns_aborted_lock_conflict +
                        counters.txns_aborted_deadlock +
                        counters.txns_aborted_lock_timeout;
  row.replicas_agree =
      cluster.CheckReplicaAgreement().ok() && cluster.CheckInvariants().empty();
  return row;
}

bool RunSweepSection(const Config& config, std::vector<SweepRow>* rows,
                     double* speedup_out) {
  std::printf("=== Ablation: intra-site concurrency (per-item 2PL) vs the "
              "serial engine ===\n");
  std::printf("config: 4 sites, db=64, txn size <= 3, 9 ms messages, zero "
              "CPU costs,\n%u txns, ALL through coordinator site 0 "
              "(virtual time)\n\n", config.txns);
  std::printf("%-8s %-10s %12s %10s %12s %12s %8s\n", "mode", "executors",
              "txn/s", "committed", "lock waits", "lock aborts", "agree");

  const SweepRow serial = MeasureSweep(/*locking=*/false, 1, config.txns);
  rows->push_back(serial);
  std::vector<SweepRow> locked;
  for (const uint32_t executors : {1u, 4u, 8u, 16u}) {
    locked.push_back(MeasureSweep(/*locking=*/true, executors, config.txns));
    rows->push_back(locked.back());
  }
  bool all_agree = serial.replicas_agree;
  auto print = [](const SweepRow& row) {
    std::printf("%-8s %-10u %12.1f %10llu %12llu %12llu %8s\n",
                row.locking ? "2PL" : "serial", row.executors,
                row.report.CommittedPerSec(),
                (unsigned long long)row.report.committed,
                (unsigned long long)row.lock_waits,
                (unsigned long long)row.aborts_conflict,
                row.replicas_agree ? "yes" : "NO");
  };
  print(serial);
  for (const SweepRow& row : locked) {
    print(row);
    all_agree = all_agree && row.replicas_agree;
  }

  const SweepRow& wide = locked.back();
  const double speedup =
      serial.report.CommittedPerSec() > 0
          ? wide.report.CommittedPerSec() / serial.report.CommittedPerSec()
          : 0.0;
  *speedup_out = speedup;
  const bool pass = speedup > 5.0 && all_agree;
  std::printf("\nspeedup at %u executors: %.2fx (gate: > 5x, replicas "
              "convergent) %s\n\n", wide.executors, speedup,
              pass ? "PASS" : "FAIL");
  return pass;
}

// -- section 2: deadlock-policy ablation under contention -------------------

void RunPolicySection(const Config& config) {
  std::printf("=== Deadlock policy under contention (db=16, txn size <= 4, "
              "8 executors, one coordinator) ===\n");
  std::printf("%-12s %12s %10s %10s %10s %10s %10s\n", "policy", "txn/s",
              "committed", "waitdie", "wounds", "timeouts", "waits");
  for (const DeadlockPolicy policy :
       {DeadlockPolicy::kWaitDie, DeadlockPolicy::kWoundWait,
        DeadlockPolicy::kTimeout}) {
    ClusterOptions options = BaseOptions(/*db_size=*/16);
    // Paper-calibrated CPU costs: longer lock hold times sharpen the
    // contention the policies are breaking.
    options.site.costs = CostModel::PaperCalibrated();
    options.site.concurrency.mode = ConcurrencyMode::kTwoPhaseLocking;
    options.site.concurrency.max_executors = 8;
    options.site.concurrency.deadlock_policy = policy;
    options.site.concurrency.lock_wait_timeout = Milliseconds(200);
    options.max_inflight = 16;
    auto cluster_owner = MakeSimCluster(options);
    SimCluster& cluster = *cluster_owner;

    UniformWorkloadOptions wopts;
    wopts.db_size = 16;
    wopts.max_txn_size = 4;
    wopts.seed = 11;
    UniformWorkload workload(wopts);

    DriverOptions dopts;
    dopts.concurrency = 16;
    dopts.measure_txns = config.contended_txns;
    dopts.coordinator_for = [](uint64_t) { return SiteId{0}; };
    const DriverReport report = Driver(&cluster, &workload, dopts).Run();

    uint64_t waitdie = 0, wounds = 0, timeouts = 0, waits = 0;
    for (SiteId s = 0; s < 4; ++s) {
      const SiteCounters& counters = cluster.site(s).counters();
      waitdie += counters.txns_aborted_lock_conflict;
      wounds += counters.lock_wounds;
      timeouts += counters.txns_aborted_lock_timeout;
      waits += counters.lock_waits;
    }
    const char* name = policy == DeadlockPolicy::kWaitDie    ? "wait-die"
                       : policy == DeadlockPolicy::kWoundWait ? "wound-wait"
                                                              : "timeout";
    std::printf("%-12s %12.1f %10llu %10llu %10llu %10llu %10llu%s\n", name,
                report.CommittedPerSec(), (unsigned long long)report.committed,
                (unsigned long long)waitdie, (unsigned long long)wounds,
                (unsigned long long)timeouts, (unsigned long long)waits,
                cluster.CheckReplicaAgreement().ok() ? "" : "  DIVERGED");
  }
  std::printf("\nExpected shape: wait-die pays restart aborts at request "
              "time, wound-wait\nconverts them into victim aborts that favor "
              "elders, timeout trades aborts for\nbounded waiting. All three "
              "keep replicas convergent.\n");
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.txns = 80;
      config.contended_txns = 60;
    } else if (arg == "--json") {
      config.json_path = "BENCH_concurrency.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  std::vector<miniraid::SweepRow> rows;
  double speedup = 0.0;
  const bool pass = miniraid::RunSweepSection(config, &rows, &speedup);
  miniraid::RunPolicySection(config);

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    out << "{\"bench\": \"ablation_locking\", \"backend\": \"sim\", "
        << "\"coordinator\": 0,\n  \"sweep\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      const miniraid::SweepRow& row = rows[i];
      out << (i ? ",\n    " : "\n    ") << "{\"mode\": \""
          << (row.locking ? "2pl" : "serial") << "\", \"executors\": "
          << row.executors << ", \"report\": "
          << row.report.ToJson(row.locking ? "2pl" : "serial")
          << ", \"lock_waits\": " << row.lock_waits << ", \"lock_aborts\": "
          << row.aborts_conflict << ", \"replicas_agree\": "
          << (row.replicas_agree ? "true" : "false") << "}";
    }
    out << "],\n  \"speedup\": " << speedup << ", \"gate\": 5.0, \"pass\": "
        << (pass ? "true" : "false") << "}\n";
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return pass ? 0 : 1;
}

// Ablation for the concurrency-control extension: what strict two-phase
// locking (wait-die) costs relative to the lock-free last-writer-wins mode
// under concurrent submission.
//
// A note on what locking buys here: because each transaction's reads
// execute atomically in one event at one site, each site applies a
// transaction's writes atomically, and workload writes are
// value-predetermined (never computed from reads), the lock-free mode's
// classical anomalies (torn reads, lost updates) are not expressible in
// this operation model — the `snapshot anomalies` column stays zero in
// both modes, by construction. 2PL's value is the guarantee: it holds for
// ANY operation semantics (e.g. read-modify-write application logic built
// on the API), at the measured cost in wait-die aborts.

#include <cstdio>

#include "core/cluster.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Row {
  uint64_t committed = 0;
  uint64_t lock_aborts = 0;
  uint64_t torn_reads = 0;
  double virtual_seconds = 0;
};

Row Drive(bool locking, uint32_t window, uint64_t seed) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 16;  // small: high contention
  options.site.enable_locking = locking;
  options.site.costs = CostModel::PaperCalibrated();
  options.site.ack_timeout = Seconds(5);
  options.sim.shared_cpu = false;
  options.transport.message_latency = Milliseconds(9);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;

  // Transactions read two fixed "pair" items together, or write both;
  // torn reads show up as the two reads disagreeing on the version.
  Rng rng(seed);
  constexpr uint32_t kTxns = 300;
  uint32_t next = 0;
  uint32_t outstanding = 0;
  Row row;

  std::function<void()> pump = [&] {
    while (outstanding < window && next < kTxns) {
      TxnSpec txn;
      txn.id = ++next;
      const ItemId a = static_cast<ItemId>(rng.NextBounded(8)) * 2;
      const ItemId b = a + 1;
      const bool writer = rng.NextBool(0.5);
      if (writer) {
        txn.ops = {Operation::Write(a, WriteValueFor(txn.id, a)),
                   Operation::Write(b, WriteValueFor(txn.id, b))};
      } else {
        txn.ops = {Operation::Read(a), Operation::Read(b)};
      }
      ++outstanding;
      cluster.managing().Submit(
          txn, static_cast<SiteId>(txn.id % 4),
          [&row, &outstanding, &pump, writer](const TxnReplyArgs& reply) {
            --outstanding;
            if (reply.outcome == TxnOutcome::kCommitted) {
              ++row.committed;
              if (!writer && reply.reads.size() == 2 &&
                  reply.reads[0].version != reply.reads[1].version) {
                ++row.torn_reads;
              }
            } else if (reply.outcome == TxnOutcome::kAbortedLockConflict) {
              ++row.lock_aborts;
            }
            pump();
          });
    }
  };
  const TimePoint start = cluster.runtime().now();
  pump();
  cluster.RunUntilIdle();
  row.virtual_seconds =
      double(cluster.runtime().now() - start) / double(Seconds(1));
  return row;
}

void Run() {
  std::printf("=== Ablation: strict 2PL (wait-die) vs lock-free "
              "last-writer-wins under concurrency ===\n");
  std::printf("config: 4 sites, 16 items in contended pairs, 300 txns "
              "(half pair-reads, half pair-writes)\n\n");
  std::printf("%-10s %-10s %10s %12s %12s %12s\n", "locking", "window",
              "committed", "lock aborts", "snapshot anoms", "virt sec");
  for (const uint32_t window : {1u, 4u, 8u}) {
    for (const bool locking : {false, true}) {
      const Row row = Drive(locking, window, /*seed=*/3);
      std::printf("%-10s %-10u %10llu %12llu %12llu %12.1f\n",
                  locking ? "2PL" : "off", window,
                  (unsigned long long)row.committed,
                  (unsigned long long)row.lock_aborts,
                  (unsigned long long)row.torn_reads, row.virtual_seconds);
    }
  }
  std::printf("\nExpected shape: serial (window 1) is identical either way; "
              "under concurrency 2PL\npays wait-die aborts (safe to retry) "
              "for ordering guarantees that hold under any\noperation "
              "semantics. Snapshot anomalies are zero in both modes by "
              "construction\n(see the header comment).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

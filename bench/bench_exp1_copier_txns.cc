// Reproduces Experiment 1 §2.2.3: the cost of copier transactions.
// Scenario: 4 sites; one site accumulates fail-locks while down, recovers,
// and then coordinates transactions whose reads of fail-locked copies
// demand copier transactions (copy request -> copy reply -> local install
// -> special clear-fail-locks transaction) before two-phase commit.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  Exp1Config config;
  const Exp1CopierResult result = RunExp1Copier(config);

  std::printf("=== Experiment 1 (§2.2.3): overhead for copier "
              "transactions ===\n");
  std::printf("config: 4 sites, db=50 items, max txn size=10, message "
              "latency=9ms, shared CPU\n\n");
  std::printf("%-52s %10s %12s\n", "", "paper (ms)", "measured (ms)");
  std::printf("%-52s %10s %12.1f\n",
              "db txn with one copier txn (at recovering site)", "270",
              result.txn_with_copier_ms);
  std::printf("%-52s %10s %12.1f\n", "db txn without copier txns", "186",
              result.txn_plain_ms);
  std::printf("%-52s %10s %12.1f\n", "serving a copy request", "25",
              result.copy_serve_ms);
  std::printf("%-52s %10s %12.1f\n", "clear-fail-locks special txn", "20",
              result.clear_locks_ms);
  std::printf("%-52s %10s %11.0f%%\n", "increase over plain transaction",
              "45%", result.increase_pct);
  std::printf("\nConclusion check: copier transactions are the heaviest "
              "overhead; the paper notes\n~30%% of the copier cost is the "
              "clear-fail-locks transactions, which embedding the\n"
              "information in 2PC could eliminate (§2.2.3).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

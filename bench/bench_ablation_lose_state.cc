// Ablation: crash semantics. The paper's testbed simulates failure with
// memory intact ("a failed site would remain inactive until recovery");
// fail-locks then pinpoint exactly the copies that missed updates. A cold
// restart (volatile state lost) forces the recovering site to fail-lock
// every copy it holds, so the recovery period covers the whole database —
// quantifying how much work the paper's fail-lock precision saves.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

struct Row {
  double locks_at_recovery = 0;
  double txns_to_recover = 0;
  double copiers = 0;
};

Row Measure(bool lose_state, double batch_threshold) {
  Row row;
  constexpr int kSeeds = 5;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Exp2Config config;
    config.scenario.seed = seed;
    config.down_txns = 30;  // well short of fail-locking everything
    config.scenario.site.lose_state_on_crash = lose_state;
    config.scenario.site.batch_copier_threshold = batch_threshold;
    config.recovering_site_weight = 0.5;
    config.recovery_cap = 20000;
    const Exp2Result result = RunExperiment2(config);
    // Locks the moment recovery starts = the value right after down_txns.
    for (const TxnRecord& rec : result.scenario.txns) {
      if (rec.txn_no == config.down_txns + 1) {
        row.locks_at_recovery += rec.fail_locks_per_site[0];
        break;
      }
    }
    row.txns_to_recover += result.txns_to_full_recovery;
    row.copiers += result.copier_txns +
                   double(result.scenario.batch_copiers_total);
  }
  row.locks_at_recovery /= kSeeds;
  row.txns_to_recover /= kSeeds;
  row.copiers /= kSeeds;
  return row;
}

void Run() {
  std::printf("=== Ablation: crash semantics — fail-lock precision vs cold "
              "restart ===\n");
  std::printf("config: Figure-1 scenario but only 30 txns while down "
              "(partial staleness),\nrecovering-site coordinator "
              "weight=0.5, 5-seed means\n\n");
  std::printf("%-34s %14s %16s %12s\n", "mode", "stale copies",
              "txns to recover", "copiers");

  const Row warm = Measure(/*lose_state=*/false, /*batch=*/0.0);
  std::printf("%-34s %14.1f %16.0f %12.1f\n",
              "retain state (paper)", warm.locks_at_recovery,
              warm.txns_to_recover, warm.copiers);
  const Row cold = Measure(/*lose_state=*/true, /*batch=*/0.0);
  std::printf("%-34s %14.1f %16.0f %12.1f\n", "cold restart",
              cold.locks_at_recovery, cold.txns_to_recover, cold.copiers);
  const Row cold_batch = Measure(/*lose_state=*/true, /*batch=*/1.0);
  std::printf("%-34s %14.1f %16.0f %12.1f\n",
              "cold restart + batch copiers", cold_batch.locks_at_recovery,
              cold_batch.txns_to_recover, cold_batch.copiers);

  std::printf("\nExpected shape: fail-locks confine the recovery period to "
              "the copies that\nactually missed updates; a cold restart "
              "must refresh all 50, which two-step\nbatch copiers then "
              "absorb into the recovery protocol itself.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Failure-scenario bench over the unified Cluster API: pipelined load
// through the same Driver across three sequential phases — healthy, with a
// failed site, and during its recovery — reporting per-phase throughput,
// outcome mix and latency. Written once against the abstract Cluster, so
// the identical harness runs on the deterministic simulator (virtual time,
// paper-calibrated costs) and on the real runtimes.
//
// This is the paper's Experiments 2/3 situation (transactions running while
// a site is down and while it catches up via copier transactions), measured
// under concurrent load instead of the paper's serial submission.
//
//   bench_failure_under_load [--backend=sim|inproc|tcp] [--smoke]

#include <cstdio>
#include <memory>
#include <string>

#include "common/logging.h"
#include "core/cluster.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Config {
  ClusterBackend backend = ClusterBackend::kSim;
  uint32_t phase_txns = 300;
  uint32_t window = 8;
};

void PrintPhase(const char* phase, const DriverReport& report) {
  std::printf("%-12s | %s\n", phase, report.Summary().c_str());
}

void Run(const Config& config) {
  ClusterOptions options;
  options.backend = config.backend;
  options.n_sites = 4;
  options.db_size = 50;
  options.max_inflight = config.window;
  if (config.backend == ClusterBackend::kSim) {
    options.site.costs = CostModel::PaperCalibrated();
    options.site.ack_timeout = Seconds(5);
    options.sim.shared_cpu = false;
    options.transport.message_latency = Milliseconds(9);
  } else {
    options.site.ack_timeout = Milliseconds(250);
    options.managing.client_timeout = Seconds(20);
  }
  auto made = MakeCluster(options);
  MR_CHECK(made.ok()) << made.status().ToString();
  auto& cluster = *made;

  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 10;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = config.window;
  dopts.measure_txns = config.phase_txns;
  // Keep load off the victim while it is down: a down coordinator would
  // only convert its share of submissions into kCoordinatorUnreachable
  // timeouts, hiding the protocol costs this bench is after.
  constexpr SiteId kVictim = 3;
  DriverOptions degraded = dopts;
  degraded.coordinator_for = [](uint64_t index) {
    return static_cast<SiteId>(index % 3);
  };

  std::printf("=== Pipelined load across failure and recovery (backend=%s, "
              "window=%u, %u txns/phase) ===\n",
              std::string(ClusterBackendName(config.backend)).c_str(),
              config.window, config.phase_txns);

  Driver healthy(cluster.get(), &workload, dopts);
  PrintPhase("healthy", healthy.Run());

  cluster->Fail(kVictim);
  // The first phase after the crash pays failure detection (ack timeouts,
  // type-2 control transactions), then ROWAA with fail-lock maintenance.
  Driver failed(cluster.get(), &workload, degraded);
  PrintPhase("failed", failed.Run());

  cluster->Recover(kVictim);
  // Recovery period: reads at the recovered site demand copier
  // transactions; writes refresh fail-locked copies for free.
  Driver recovering(cluster.get(), &workload, dopts);
  const DriverReport recovery_report = recovering.Run();
  PrintPhase("recovering", recovery_report);

  const uint32_t residual = cluster->FailLockCountFor(kVictim);
  std::printf("\nresidual fail-locks on site %u after the recovery phase: "
              "%u\n", kVictim, residual);
  const Status agreement = cluster->CheckReplicaAgreement();
  std::printf("replica agreement: %s\n",
              agreement.ok() ? "ok" : agreement.ToString().c_str());
  std::printf("\nExpected shape: the failed phase loses throughput to "
              "detection timeouts and\nfail-lock maintenance; the recovery "
              "phase pays for copier transactions until\nthe recovered "
              "site's copies are refreshed on demand.\n");
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.phase_txns = 60;
    } else if (arg == "--backend=sim") {
      config.backend = miniraid::ClusterBackend::kSim;
    } else if (arg == "--backend=inproc") {
      config.backend = miniraid::ClusterBackend::kInProc;
    } else if (arg == "--backend=tcp") {
      config.backend = miniraid::ClusterBackend::kTcp;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  miniraid::Run(config);
  return 0;
}

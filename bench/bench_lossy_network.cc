// Lossy-network bench: sweeps message-loss rates over the deterministic
// simulator and measures what the reliable channel + protocol retry budget
// cost and buy — throughput, tail latency, per-2PC-phase latency, channel
// retransmissions/dedup, and (the acceptance bar) client timeouts, which
// must stay at zero at every swept loss rate.
//
// Each point runs the bench_failure_under_load scenario: pipelined load
// through a healthy phase, a phase with a failed site, and its recovery
// phase, on a fresh cluster with the given drop probability.
//
//   bench_lossy_network [--smoke] [--json[=PATH]] [--dup=P] [--loss=P]
//
// --smoke shrinks phases and the sweep for CI; --dup adds duplicate
// injection on top of every point; --loss replaces the sweep with a single
// point. Exit code 1 if any point saw a client timeout or broke replica
// agreement.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/cluster.h"
#include "txn/driver.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

struct Config {
  uint32_t phase_txns = 300;
  uint32_t window = 8;
  double duplicate_probability = 0.0;
  double single_loss = -1.0;  // < 0 = use the sweep
  bool smoke = false;
  std::string json_path;  // empty = no JSON output
};

struct Point {
  double loss = 0.0;
  DriverReport healthy;
  DriverReport failed;
  DriverReport recovering;
  DurationStats prepare_phase;  // coordinator-side 2PC phase latencies
  DurationStats commit_phase;
  ClusterStats stats;
  bool agreement = false;

  uint64_t Unreachable() const {
    return healthy.unreachable + failed.unreachable + recovering.unreachable;
  }
  bool Pass() const { return Unreachable() == 0 && agreement; }
};

Point RunPoint(const Config& config, double loss) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 50;
  options.max_inflight = config.window;
  options.site.costs = CostModel::PaperCalibrated();
  options.sim.shared_cpu = false;
  options.transport.message_latency = Milliseconds(9);
  options.transport.faults.drop_probability = loss;
  options.transport.faults.duplicate_probability =
      config.duplicate_probability;
  options.transport.faults.seed = 7;
  // The repair stack under test: channel retransmission below the
  // protocol, phase re-sends + decision queries inside it. The timeouts
  // are sized so a full retry chain still beats the client timeout.
  options.reliable.enabled = true;
  options.site.retry_limit = 2;
  options.site.ack_timeout = Milliseconds(500);

  auto cluster = MakeSimCluster(options);

  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 10;
  UniformWorkload workload(wopts);

  DriverOptions dopts;
  dopts.concurrency = config.window;
  dopts.measure_txns = config.phase_txns;
  constexpr SiteId kVictim = 3;
  DriverOptions degraded = dopts;
  degraded.coordinator_for = [](uint64_t index) {
    return static_cast<SiteId>(index % 3);  // keep load off the down site
  };

  Point point;
  point.loss = loss;
  Driver healthy(cluster.get(), &workload, dopts);
  point.healthy = healthy.Run();
  cluster->Fail(kVictim);
  Driver failed(cluster.get(), &workload, degraded);
  point.failed = failed.Run();
  cluster->Recover(kVictim);
  Driver recovering(cluster.get(), &workload, dopts);
  point.recovering = recovering.Run();

  for (SiteId s = 0; s < options.n_sites; ++s) {
    point.prepare_phase.MergeFrom(
        cluster->site(s).counters().phase_prepare_time);
    point.commit_phase.MergeFrom(
        cluster->site(s).counters().phase_commit_time);
  }
  point.stats = cluster->Stats();
  point.agreement = cluster->CheckReplicaAgreement().ok();
  return point;
}

void PrintPoint(const Point& point) {
  std::printf("--- loss=%4.1f%% ---\n", point.loss * 100.0);
  std::printf("  %-10s | %s\n", "healthy", point.healthy.Summary().c_str());
  std::printf("  %-10s | %s\n", "failed", point.failed.Summary().c_str());
  std::printf("  %-10s | %s\n", "recovering",
              point.recovering.Summary().c_str());
  std::printf("  2pc phases | prepare p95=%.1fms commit p95=%.1fms\n",
              point.prepare_phase.empty()
                  ? 0.0
                  : ToMillis(point.prepare_phase.Percentile(0.95)),
              point.commit_phase.empty()
                  ? 0.0
                  : ToMillis(point.commit_phase.Percentile(0.95)));
  std::printf("  channel    | dropped=%llu retransmits=%llu "
              "dup_suppressed=%llu abandoned=%llu acks=%llu\n",
              (unsigned long long)point.stats.messages_dropped,
              (unsigned long long)point.stats.channel.retransmits,
              (unsigned long long)point.stats.channel.dup_suppressed,
              (unsigned long long)point.stats.channel.abandoned,
              (unsigned long long)point.stats.channel.acks_sent);
  std::printf("  clients    | unreachable=%llu late_outcomes=%llu "
              "agreement=%s -> %s\n",
              (unsigned long long)point.Unreachable(),
              (unsigned long long)point.stats.late_outcomes,
              point.agreement ? "ok" : "BROKEN",
              point.Pass() ? "pass" : "FAIL");
}

std::string PointJson(const Point& point) {
  std::string json = StrFormat(
      "{\"loss\": %.3f, \"healthy\": %s,\n     \"failed\": %s,\n     "
      "\"recovering\": %s,\n     \"prepare_p95_ms\": %.3f, "
      "\"commit_p95_ms\": %.3f, \"messages_dropped\": %llu, "
      "\"retransmits\": %llu, \"dup_suppressed\": %llu, \"abandoned\": "
      "%llu, \"unreachable\": %llu, \"late_outcomes\": %llu, "
      "\"agreement\": %s, \"pass\": %s}",
      point.loss, point.healthy.ToJson("healthy").c_str(),
      point.failed.ToJson("failed").c_str(),
      point.recovering.ToJson("recovering").c_str(),
      point.prepare_phase.empty()
          ? 0.0
          : ToMillis(point.prepare_phase.Percentile(0.95)),
      point.commit_phase.empty()
          ? 0.0
          : ToMillis(point.commit_phase.Percentile(0.95)),
      (unsigned long long)point.stats.messages_dropped,
      (unsigned long long)point.stats.channel.retransmits,
      (unsigned long long)point.stats.channel.dup_suppressed,
      (unsigned long long)point.stats.channel.abandoned,
      (unsigned long long)point.Unreachable(),
      (unsigned long long)point.stats.late_outcomes,
      point.agreement ? "true" : "false", point.Pass() ? "true" : "false");
  return json;
}

bool Run(const Config& config) {
  std::vector<double> sweep;
  if (config.single_loss >= 0.0) {
    sweep = {config.single_loss};
  } else if (config.smoke) {
    sweep = {0.0, 0.05, 0.10};
  } else {
    sweep = {0.0, 0.02, 0.05, 0.10, 0.20};
  }

  std::printf("=== Throughput and tail latency vs message loss "
              "(reliable channel on, retry_limit=2, window=%u, %u "
              "txns/phase, dup=%.0f%%) ===\n",
              config.window, config.phase_txns,
              config.duplicate_probability * 100.0);

  std::vector<Point> points;
  bool pass = true;
  for (double loss : sweep) {
    points.push_back(RunPoint(config, loss));
    PrintPoint(points.back());
    pass = pass && points.back().Pass();
  }

  std::printf("\nExpected shape: throughput degrades gracefully with loss "
              "(every drop costs one\nRTO, ~100ms, of tail latency) while "
              "unreachable stays at zero — the channel\nand the retry "
              "budget absorb loss before the client timeout fires.\n");

  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    out << "{\"bench\": \"lossy_network\", \"duplicate_probability\": "
        << config.duplicate_probability << ",\n \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      out << "    " << PointJson(points[i])
          << (i + 1 < points.size() ? ",\n" : "\n");
    }
    out << " ],\n \"pass\": " << (pass ? "true" : "false") << "}\n";
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  return pass;
}

}  // namespace
}  // namespace miniraid

int main(int argc, char** argv) {
  miniraid::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.smoke = true;
      config.phase_txns = 60;
    } else if (arg == "--json") {
      config.json_path = "BENCH_lossy_network.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--dup=", 0) == 0) {
      config.duplicate_probability = std::stod(arg.substr(6));
    } else if (arg.rfind("--loss=", 0) == 0) {
      config.single_loss = std::stod(arg.substr(7));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return miniraid::Run(config) ? 0 : 1;
}

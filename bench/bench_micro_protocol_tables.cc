// Microbenchmarks for the remaining protocol tables: session vector
// operations (consulted on every commit and every control transaction) and
// the trace log (to confirm tracing is cheap enough to leave on during
// experiments).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "metrics/trace.h"
#include "replication/placement.h"
#include "replication/session_vector.h"

namespace miniraid {
namespace {

void BM_SessionVectorOperationalSites(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  SessionVector vec(n);
  for (SiteId s = 0; s < n; s += 3) vec.MarkDown(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.OperationalSites());
  }
}
BENCHMARK(BM_SessionVectorOperationalSites)->Arg(4)->Arg(64);

void BM_SessionVectorMerge(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  SessionVector local(n);
  SessionVector remote(n);
  for (SiteId s = 0; s < n; ++s) {
    remote.Set(s, s % 5 + 1, s % 2 ? SiteStatus::kUp : SiteStatus::kDown);
  }
  const auto wire = remote.ToWire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(local.MergeFrom(wire));
  }
}
BENCHMARK(BM_SessionVectorMerge)->Arg(4)->Arg(64);

void BM_HoldersLookup(benchmark::State& state) {
  HoldersTable table(1 << 12, 16);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Holds(static_cast<ItemId>(rng.NextBounded(1 << 12)),
                    static_cast<SiteId>(rng.NextBounded(16))));
  }
}
BENCHMARK(BM_HoldersLookup);

void BM_TraceRecord(benchmark::State& state) {
  TraceLog log(1 << 16);
  TimePoint t = 0;
  for (auto _ : state) {
    log.Record(t += 9, 1, TraceEvent::kTxnCommitted, 42, 3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_TraceFilter(benchmark::State& state) {
  TraceLog log(1 << 16);
  Rng rng(1);
  for (int i = 0; i < (1 << 16); ++i) {
    log.Record(i, static_cast<SiteId>(rng.NextBounded(4)),
               static_cast<TraceEvent>(rng.NextBounded(16)), i, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Count(TraceEvent::kTxnCommitted));
  }
}
BENCHMARK(BM_TraceFilter);

}  // namespace
}  // namespace miniraid

// Ablation for the DESIGN.md interpretation of Figure 1: how coordinator
// placement during recovery shapes copier traffic and recovery length. The
// paper saw only 2 copier transactions in a ~160-transaction recovery,
// which implies transactions kept flowing to the operational site. Sweeping
// the recovering site's share of coordination shows the trade: routing work
// to the recoverer generates copiers (each read of a fail-locked copy
// demands one) and *shortens* recovery, at the price of slower transactions
// there (Experiment 1 §2.2.3: +45% per copier transaction).

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: coordinator placement during recovery "
              "(Figure-1 interpretation) ===\n");
  std::printf("config: Figure-1 scenario; weight = recovering site's "
              "relative share of coordination\n\n");
  std::printf("%-12s %18s %16s %20s\n", "weight", "txns to recover",
              "demand copiers", "data-unavail aborts");

  for (const double weight : {0.0, 0.02, 0.1, 0.5, 1.0}) {
    double txns = 0, copiers = 0, aborts = 0;
    constexpr int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Exp2Config config;
      config.scenario.seed = seed;
      config.recovering_site_weight = weight;
      const Exp2Result result = RunExperiment2(config);
      txns += result.txns_to_full_recovery;
      copiers += result.copier_txns;
      aborts += double(result.scenario.aborted_data_unavailable);
    }
    std::printf("%-12.2f %18.0f %16.1f %20.1f\n", weight, txns / kSeeds,
                copiers / kSeeds, aborts / kSeeds);
  }
  std::printf("\nExpected shape: more coordination at the recovering site "
              "=> more copier\ntransactions and a shorter recovery. The "
              "paper's trace (2 copiers, ~160 txns)\nmatches a small "
              "weight.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

// Ablation for the paper's §5 hot-set assumption: "we made the assumption
// that in a database there is a subset of data items that is frequently
// referenced [with] approximately equal probabilities." This bench relaxes
// equal-probability access to a Zipf distribution over the hot set and
// re-runs the Figure-1 recovery scenario.
//
// Under skew, hot items are both fail-locked sooner (more writes hit them)
// and refreshed sooner; the cold tail dominates the recovery period even
// more than under uniform access, lengthening full recovery.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  std::printf("=== Ablation: access skew over the hot set (paper §5 "
              "assumption) ===\n");
  std::printf("config: Figure-1 scenario with Zipf(theta) item "
              "selection\n\n");
  std::printf("%-12s %12s %18s %16s\n", "zipf theta", "peak locks",
              "txns to recover", "demand copiers");

  for (const double theta : {0.0, 0.5, 0.8, 0.99}) {
    double peak = 0, txns = 0, copiers = 0;
    constexpr int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Exp2Config config;
      config.scenario.seed = seed;
      config.scenario.zipf_theta = theta;
      config.recovery_cap = 50000;
      const Exp2Result result = RunExperiment2(config);
      peak += result.peak_fail_locks;
      txns += result.txns_to_full_recovery;
      copiers += result.copier_txns;
    }
    std::printf("%-12.2f %12.0f %18.0f %16.1f\n", theta, peak / kSeeds,
                txns / kSeeds, copiers / kSeeds);
  }
  std::printf("\nExpected shape: skew lowers the fail-locked peak slightly "
              "(repeated writes hit the\nsame hot items) and stretches full "
              "recovery (cold items are rarely written) —\nmotivating the "
              "paper's batch-mode step two for the cold tail.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

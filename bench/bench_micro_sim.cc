// Microbenchmarks for the simulation substrate and end-to-end transaction
// throughput: event queue operations, and whole committed transactions per
// second through the full protocol stack under the simulator (zero cost
// model — pure protocol logic).

#include <benchmark/benchmark.h>

#include "core/cluster.h"
#include "sim/event_queue.h"
#include "txn/workload.h"

namespace miniraid {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue queue;
  TimePoint t = 0;
  for (auto _ : state) {
    queue.Push(t += 3, [] {});
    queue.Push(t + 1, [] {});
    (void)queue.Pop();
    (void)queue.Pop();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue queue;
  TimePoint t = 0;
  for (auto _ : state) {
    const EventQueue::EventId id = queue.Push(t += 1, [] {});
    const EventQueue::EventId keep = queue.Push(t + 1, [] {});
    queue.Cancel(id);
    (void)keep;
    (void)queue.Pop();
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_SimTxnThroughput(benchmark::State& state) {
  const uint32_t n_sites = static_cast<uint32_t>(state.range(0));
  ClusterOptions options;
  options.n_sites = n_sites;
  options.db_size = 50;
  options.transport.message_latency = Microseconds(10);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 10;
  UniformWorkload workload(wopts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.RunTxn(workload.Next(), 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("committed txns through full 2PC + fail-lock maintenance");
}
BENCHMARK(BM_SimTxnThroughput)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SimFailureRecoveryCycle(benchmark::State& state) {
  ClusterOptions options;
  options.n_sites = 4;
  options.db_size = 50;
  options.site.ack_timeout = Milliseconds(50);
  options.transport.message_latency = Microseconds(10);
  auto cluster_owner = MakeSimCluster(options);
  SimCluster& cluster = *cluster_owner;
  UniformWorkloadOptions wopts;
  wopts.db_size = 50;
  wopts.max_txn_size = 5;
  UniformWorkload workload(wopts);
  for (auto _ : state) {
    cluster.Fail(3);
    (void)cluster.RunTxn(workload.Next(), 0);  // detects the failure
    (void)cluster.RunTxn(workload.Next(), 0);  // sets fail-locks
    cluster.Recover(3);
    benchmark::DoNotOptimize(cluster.site(3).OwnFailLockCount());
  }
  state.SetLabel("fail + detect + fail-lock + recover cycle");
}
BENCHMARK(BM_SimFailureRecoveryCycle);

}  // namespace
}  // namespace miniraid

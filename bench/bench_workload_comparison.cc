// The paper's stated next step: "In the near future, we hope to repeat our
// experiments with the well-known benchmarks ET1 from Tandem Corporation
// [Anon85] and the Wisconsin benchmark [Bitt83]." This bench does exactly
// that: the Figure-1 failure/recovery scenario driven by the paper's
// uniform workload, the ET1/DebitCredit workload, and a Wisconsin-style
// scan/update mix, all over the same 50-item hot set budget.

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

struct Row {
  double peak = 0;
  double txns_to_recover = 0;
  double copiers = 0;
  double aborts = 0;
};

Row Measure(const std::function<std::unique_ptr<WorkloadGenerator>(uint64_t)>&
                factory,
            uint32_t db_size) {
  Row row;
  constexpr int kSeeds = 5;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Exp2Config config;
    config.scenario.seed = seed;
    config.scenario.db_size = db_size;
    config.scenario.workload_factory = [&factory, seed] {
      return factory(seed);
    };
    config.recovering_site_weight = 0.3;
    config.recovery_cap = 20000;
    const Exp2Result result = RunExperiment2(config);
    row.peak += result.peak_fail_locks;
    row.txns_to_recover += result.txns_to_full_recovery;
    row.copiers += result.copier_txns;
    row.aborts += double(result.scenario.aborted);
  }
  row.peak /= kSeeds;
  row.txns_to_recover /= kSeeds;
  row.copiers /= kSeeds;
  row.aborts /= kSeeds;
  return row;
}

void Print(const char* name, const Row& row) {
  std::printf("%-22s %12.1f %16.0f %12.1f %10.1f\n", name, row.peak,
              row.txns_to_recover, row.copiers, row.aborts);
}

void Run() {
  std::printf("=== Workload comparison: uniform (paper) vs ET1 vs "
              "Wisconsin (paper §5 future work) ===\n");
  std::printf("scenario: Figure-1 failure/recovery (site 0 down for 100 "
              "txns, then recovers);\nrecovering-site coordinator "
              "weight=0.3; 5-seed means\n\n");
  std::printf("%-22s %12s %16s %12s %10s\n", "workload", "peak locks",
              "txns to recover", "copiers", "aborts");

  Print("uniform 1..5 (paper)",
        Measure(
            [](uint64_t seed) {
              UniformWorkloadOptions options;
              options.db_size = 50;
              options.max_txn_size = 5;
              options.seed = seed;
              return std::make_unique<UniformWorkload>(options);
            },
            50));

  // ET1 over a 50-item layout: 40 accounts, 6 tellers, 2 branches, 2
  // history slots. Every transaction writes 4 items, so staleness both
  // accumulates and clears fast; tellers/branches are hot and refresh
  // almost immediately, accounts form the tail.
  Print("ET1 / DebitCredit",
        Measure(
            [](uint64_t seed) {
              Et1WorkloadOptions options;
              options.accounts = 40;
              options.tellers = 6;
              options.branches = 2;
              options.history_slots = 2;
              options.seed = seed;
              return std::make_unique<Et1Workload>(options);
            },
            50));

  // Wisconsin-style: half selection scans (5-item range reads), half point
  // updates. Writes are scarcer, so fewer fail-locks are set while down,
  // but scans make fail-locked *reads* likely during recovery — copier
  // transactions do more of the refresh work.
  Print("Wisconsin scans+updates",
        Measure(
            [](uint64_t seed) {
              WisconsinWorkloadOptions options;
              options.db_size = 50;
              options.scan_length = 5;
              options.scan_fraction = 0.5;
              options.seed = seed;
              return std::make_unique<WisconsinWorkload>(options);
            },
            50));

  std::printf("\nExpected shape: the uniform mix clears fastest (writes "
              "spread evenly over the hot\nset); ET1 concentrates its "
              "writes on tellers/branches/history, so the account\ntail "
              "recovers slower despite more writes per transaction; "
              "read-heavy Wisconsin\nsets the fewest fail-locks but leans "
              "hardest on copier transactions — the paper's\n§5 prediction "
              "for read-dominated mixes.\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}

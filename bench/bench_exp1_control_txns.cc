// Reproduces Experiment 1 §2.2.2: the cost of control transactions.
// Scenario: 4 sites; one site fails (detected by the next coordinator's
// prepare-ack timeout, which triggers control transaction type 2), then
// recovers (control transaction type 1 at the recovering site and at each
// operational site).

#include <cstdio>

#include "core/experiments.h"

namespace miniraid {
namespace {

void Run() {
  Exp1Config config;
  const Exp1ControlResult result = RunExp1Control(config);

  std::printf("=== Experiment 1 (§2.2.2): overhead for control "
              "transactions ===\n");
  std::printf("config: 4 sites, db=50 items, max txn size=10, message "
              "latency=9ms, shared CPU\n\n");
  std::printf("%-44s %12s %12s\n", "", "paper (ms)", "measured (ms)");
  std::printf("%-44s %12s %12.1f\n", "type 1 at recovering site", "190",
              result.type1_recovering_ms);
  std::printf("%-44s %12s %12.1f\n", "type 1 at operational site", "50",
              result.type1_operational_ms);
  std::printf("%-44s %12s %12.1f\n", "type 2 (announce + vector update)",
              "68", result.type2_ms);
  std::printf("\nConclusion check: a control transaction costs about as "
              "much as a small database\ntransaction, and control "
              "transactions are rare (paper §2.3).\n");
}

}  // namespace
}  // namespace miniraid

int main() {
  miniraid::Run();
  return 0;
}
